#include "analysis/dataflow.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "core/functional.h"
#include "core/op_registry.h"
#include "nn/layers.h"
#include "tensor/shape.h"

namespace fxcpp::analysis {

using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::Opcode;
using fx::OpInfo;
using fx::OpRegistry;

// ---------------------------------------------------------------------------
// Constness
// ---------------------------------------------------------------------------

namespace {

Const meet(Const a, Const b) {
  if (a == Const::NonConst || b == Const::NonConst) return Const::NonConst;
  if (a == Const::Const || b == Const::Const) return Const::Const;
  return Const::Unknown;
}

}  // namespace

ConstFact ConstnessAnalysis::transfer(const Node& n,
                                      const FactMap& facts) const {
  switch (n.op()) {
    case Opcode::Placeholder:
    case Opcode::CallModule:  // potentially stateful / training-dependent
    case Opcode::Output:
      return ConstFact{Const::NonConst};
    case Opcode::GetAttr:
      if (gm_ != nullptr) {
        try {
          gm_->resolve_attr(n.target());
        } catch (const std::exception&) {
          return ConstFact{Const::NonConst};  // nothing could bake it
        }
      }
      return ConstFact{Const::Const};
    case Opcode::CallFunction:
    case Opcode::CallMethod: {
      fx::fn::ensure_registered();
      const OpRegistry& reg = n.op() == Opcode::CallFunction
                                  ? OpRegistry::functions()
                                  : OpRegistry::methods();
      const OpInfo* info = reg.find(n.target());
      if (info == nullptr || !info->pure) return ConstFact{Const::NonConst};
      Const c = Const::Const;
      for (const Node* in : n.input_nodes()) {
        const auto it = facts.find(in);
        const Const ic = it == facts.end() ? Const::NonConst : it->second.value;
        // Unknown inputs stay optimistic (resolved by the next round when a
        // back edge fed them); NonConst taints immediately.
        if (ic == Const::NonConst) c = Const::NonConst;
      }
      return ConstFact{c};
    }
  }
  return ConstFact{Const::NonConst};
}

bool ConstnessAnalysis::join(ConstFact& dst, const ConstFact& src) const {
  const Const merged = meet(dst.value, src.value);
  if (merged == dst.value) return false;
  dst.value = merged;
  return true;
}

std::unordered_map<const Node*, bool> constant_nodes(const Graph& g,
                                                     const GraphModule* gm) {
  ConstnessAnalysis a(gm);
  auto facts = a.run(g);
  std::unordered_map<const Node*, bool> out;
  out.reserve(facts.size());
  for (const auto& [n, f] : facts) out.emplace(n, f.is_const());
  return out;
}

// ---------------------------------------------------------------------------
// Alias sets
// ---------------------------------------------------------------------------

bool module_output_is_fresh(const nn::Module* m) {
  return dynamic_cast<const nn::Linear*>(m) != nullptr ||
         dynamic_cast<const nn::Conv2d*>(m) != nullptr ||
         dynamic_cast<const nn::BatchNorm2d*>(m) != nullptr ||
         dynamic_cast<const nn::LayerNorm*>(m) != nullptr ||
         dynamic_cast<const nn::MaxPool2d*>(m) != nullptr ||
         dynamic_cast<const nn::AdaptiveAvgPool2d*>(m) != nullptr ||
         dynamic_cast<const nn::Embedding*>(m) != nullptr;
}

namespace {

void merge_base(std::vector<const Node*>& dst, const Node* b) {
  if (std::find(dst.begin(), dst.end(), b) == dst.end()) dst.push_back(b);
}

}  // namespace

AliasFact AliasAnalysis::transfer(const Node& n, const FactMap& facts) const {
  AliasFact out;
  switch (n.op()) {
    case Opcode::Placeholder:
    case Opcode::GetAttr:
      // Storage born outside the graph (caller inputs / module state).
      out.external = true;
      return out;
    case Opcode::CallFunction:
    case Opcode::CallMethod: {
      fx::fn::ensure_registered();
      const OpRegistry& reg = n.op() == Opcode::CallFunction
                                  ? OpRegistry::functions()
                                  : OpRegistry::methods();
      const OpInfo* info = reg.find(n.target());
      out.fresh = info != nullptr && info->fresh_output;
      break;
    }
    case Opcode::CallModule:
      if (gm_ != nullptr) {
        try {
          out.fresh = module_output_is_fresh(gm_->resolve_module(n.target()).get());
        } catch (const std::exception&) {
          out.fresh = false;
        }
      }
      break;
    case Opcode::Output:
      break;  // view-like union below: the escape set of the graph
  }
  if (out.fresh) {
    out.bases.push_back(&n);
    return out;
  }
  // View or unknown kernel: the result may alias any input.
  for (const Node* in : n.input_nodes()) {
    const auto it = facts.find(in);
    if (it == facts.end()) continue;
    for (const Node* b : it->second.bases) merge_base(out.bases, b);
    out.external = out.external || it->second.external;
  }
  return out;
}

bool AliasAnalysis::join(AliasFact& dst, const AliasFact& src) const {
  bool changed = false;
  for (const Node* b : src.bases) {
    if (std::find(dst.bases.begin(), dst.bases.end(), b) == dst.bases.end()) {
      dst.bases.push_back(b);
      changed = true;
    }
  }
  if (src.fresh && !dst.fresh) {
    dst.fresh = true;
    changed = true;
  }
  if (src.external && !dst.external) {
    dst.external = true;
    changed = true;
  }
  return changed;
}

AliasSummary alias_summary(const Graph& g, const GraphModule* gm) {
  AliasAnalysis analysis(gm);
  const auto facts = analysis.run(g);

  AliasSummary s;
  s.iterations = analysis.iterations();
  for (Node* n : g.nodes()) {
    if (n->op() == Opcode::Placeholder) continue;  // register fills, not tape
    s.index.emplace(n, static_cast<int>(s.order.size()));
    s.order.push_back(n);
  }
  const std::size_t n = s.order.size();
  s.fresh.assign(n, 0);
  s.external.assign(n, 0);
  s.escaped.assign(n, 0);
  s.bases.assign(n, {});
  s.last_use.resize(n);
  s.readers.assign(n, {});

  for (std::size_t i = 0; i < n; ++i) {
    const AliasFact& f = facts.at(s.order[i]);
    s.fresh[i] = f.fresh ? 1 : 0;
    s.external[i] = f.external ? 1 : 0;
    s.last_use[i] = static_cast<int>(i);
    for (const Node* b : f.bases) {
      const auto it = s.index.find(b);
      if (it != s.index.end()) s.bases[i].push_back(it->second);
    }
  }

  // Forward walk: every read through an alias set extends the base's
  // lifetime and records the reader; reads by Output mark escapes. This is
  // the planner's former Pass 1, in node coordinates.
  for (std::size_t i = 0; i < n; ++i) {
    const Node* reader = s.order[i];
    const bool is_output = reader->op() == Opcode::Output;
    for (const Node* in : reader->input_nodes()) {
      const AliasFact& f = facts.at(in);
      for (const Node* b : f.bases) {
        const auto it = s.index.find(b);
        if (it == s.index.end()) continue;
        const auto bi = static_cast<std::size_t>(it->second);
        s.last_use[bi] = std::max(s.last_use[bi], static_cast<int>(i));
        if (s.readers[bi].empty() ||
            s.readers[bi].back() != static_cast<int>(i)) {
          s.readers[bi].push_back(static_cast<int>(i));
        }
        if (is_output) s.escaped[bi] = 1;
      }
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

LivenessAnalysis::LivenessAnalysis(const Graph& g) {
  int i = 0;
  for (const Node* n : g.nodes()) index_.emplace(n, i++);
}

LiveFact LivenessAnalysis::transfer(const Node& n, const FactMap&) const {
  LiveFact f;
  for (const Node* u : n.users()) {
    const auto it = index_.find(u);
    if (it != index_.end()) f.last_use = std::max(f.last_use, it->second);
  }
  return f;
}

bool LivenessAnalysis::join(LiveFact& dst, const LiveFact& src) const {
  if (src.last_use <= dst.last_use) return false;
  dst.last_use = src.last_use;
  return true;
}

// ---------------------------------------------------------------------------
// Reachability / dead code
// ---------------------------------------------------------------------------

ReachFact ReachabilityAnalysis::transfer(const Node& n,
                                         const FactMap& facts) const {
  if (n.op() == Opcode::Output) return ReachFact{true};
  for (const Node* u : n.users()) {
    const auto it = facts.find(u);
    if (it != facts.end() && it->second.live) return ReachFact{true};
  }
  return ReachFact{false};
}

bool ReachabilityAnalysis::join(ReachFact& dst, const ReachFact& src) const {
  if (!src.live || dst.live) return false;
  dst.live = true;
  return true;
}

std::vector<const Node*> dead_nodes(const Graph& g) {
  ReachabilityAnalysis a;
  const auto facts = a.run(g);
  std::vector<const Node*> out;
  for (const Node* n : g.nodes()) {
    if (n->op() == Opcode::Placeholder || n->op() == Opcode::Output) continue;
    if (!facts.at(n).live) out.push_back(n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Bundled facts
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string meta_sym_shape(const Node* n) {
  if (n->has_meta("sym_shape")) {
    if (const auto* s = std::get_if<std::string>(&n->meta("sym_shape"))) {
      return *s;
    }
  }
  if (n->has_shape()) return shape_str(n->shape());
  return "";
}

// A placeholder is shape-polymorphic when nothing pins it to one concrete
// shape: missing shape/dtype meta, or a sym_shape carrying symbolic (lettered)
// dimensions. See NodeFacts::shape_poly.
bool placeholder_shape_poly(const Node* n) {
  if (n->op() != Opcode::Placeholder) return false;
  if (!n->has_shape() || !n->has_meta("dtype")) return true;
  if (n->has_meta("sym_shape")) {
    if (const auto* s = std::get_if<std::string>(&n->meta("sym_shape"))) {
      for (char c : *s) {
        if (std::isalpha(static_cast<unsigned char>(c))) return true;
      }
    }
  }
  return false;
}

}  // namespace

GraphFacts analyze_graph(const Graph& g, const GraphModule* gm) {
  GraphFacts out;

  ConstnessAnalysis constness(gm);
  const auto const_facts = constness.run(g);
  out.constness_iterations = constness.iterations();

  const AliasSummary aliases = alias_summary(g, gm);
  out.alias_iterations = aliases.iterations;

  LivenessAnalysis liveness(g);
  const auto live_facts = liveness.run(g);
  out.liveness_iterations = liveness.iterations();

  ReachabilityAnalysis reach;
  const auto reach_facts = reach.run(g);
  out.reachability_iterations = reach.iterations();

  int def = 0;
  for (const Node* n : g.nodes()) {
    NodeFacts f;
    f.name = n->name();
    f.opcode = fx::opcode_name(n->op());
    f.target = n->target();
    f.is_const = const_facts.at(n).is_const();
    f.def = def++;
    f.last_use = live_facts.at(n).last_use;
    f.dead = !reach_facts.at(n).live && n->op() != Opcode::Placeholder &&
             n->op() != Opcode::Output;
    f.sym_shape = meta_sym_shape(n);
    f.shape_poly = placeholder_shape_poly(n);
    const auto it = aliases.index.find(n);
    if (it != aliases.index.end()) {
      const auto i = static_cast<std::size_t>(it->second);
      f.fresh = aliases.fresh[i] != 0;
      f.external = aliases.external[i] != 0;
      f.escapes = aliases.escaped[i] != 0;
      for (int b : aliases.bases[i]) {
        f.alias_bases.push_back(
            aliases.order[static_cast<std::size_t>(b)]->name());
      }
    } else {
      // Placeholder: external storage by definition.
      f.external = true;
    }
    out.nodes.push_back(std::move(f));
  }
  return out;
}

std::string GraphFacts::to_string() const {
  std::ostringstream os;
  os << "node                 const fresh escapes dead  poly  live-range  "
     << "aliases  sym_shape\n";
  for (const NodeFacts& f : nodes) {
    std::string aliases;
    for (const auto& a : f.alias_bases) {
      aliases += aliases.empty() ? a : "," + a;
    }
    if (aliases.empty()) aliases = f.external ? "<external>" : "-";
    char range[32];
    std::snprintf(range, sizeof(range), "[%d,%d]", f.def, f.last_use);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-20s %-5s %-5s %-7s %-5s %-5s %-11s %s  %s\n",
                  f.name.c_str(), f.is_const ? "yes" : "no",
                  f.fresh ? "yes" : "no", f.escapes ? "yes" : "no",
                  f.dead ? "yes" : "no", f.shape_poly ? "yes" : "no", range,
                  aliases.c_str(), f.sym_shape.c_str());
    os << line;
  }
  return os.str();
}

std::string GraphFacts::to_json() const {
  std::ostringstream os;
  os << "{\n  \"iterations\": {\"constness\": " << constness_iterations
     << ", \"alias\": " << alias_iterations
     << ", \"liveness\": " << liveness_iterations
     << ", \"reachability\": " << reachability_iterations << "},\n"
     << "  \"nodes\": [";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeFacts& f = nodes[i];
    os << (i ? ",\n    {" : "\n    {") << "\"name\": \"" << json_escape(f.name)
       << "\", \"opcode\": \"" << json_escape(f.opcode) << "\", \"target\": \""
       << json_escape(f.target) << "\", \"const\": "
       << (f.is_const ? "true" : "false")
       << ", \"fresh\": " << (f.fresh ? "true" : "false")
       << ", \"external\": " << (f.external ? "true" : "false")
       << ", \"escapes\": " << (f.escapes ? "true" : "false")
       << ", \"dead\": " << (f.dead ? "true" : "false") << ", \"def\": "
       << f.def << ", \"last_use\": " << f.last_use << ", \"aliases\": [";
    for (std::size_t j = 0; j < f.alias_bases.size(); ++j) {
      os << (j ? ", " : "") << "\"" << json_escape(f.alias_bases[j]) << "\"";
    }
    os << "], \"sym_shape\": \"" << json_escape(f.sym_shape)
       << "\", \"shape_poly\": " << (f.shape_poly ? "true" : "false") << "}";
  }
  os << (nodes.empty() ? "]\n}" : "\n  ]\n}");
  return os.str();
}

}  // namespace fxcpp::analysis
