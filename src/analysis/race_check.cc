#include "analysis/race_check.h"

#include <algorithm>
#include <string>

namespace fxcpp::analysis {

using fx::CompiledGraph;
using fx::Instr;
using fx::Node;
using fx::Schedule;
using fx::TapePlan;

HappensBefore::HappensBefore(int n, const std::vector<std::vector<int>>& succs)
    : n_(n), words_((static_cast<std::size_t>(n) + 63) / 64) {
  reach_.assign(static_cast<std::size_t>(n) * words_, 0);

  // Kahn topological order over the edge relation.
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int s : succs[static_cast<std::size_t>(i)]) {
      if (s >= 0 && s < n) ++indeg[static_cast<std::size_t>(s)];
    }
  }
  std::vector<int> topo;
  topo.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) topo.push_back(i);
  }
  for (std::size_t head = 0; head < topo.size(); ++head) {
    for (int s : succs[static_cast<std::size_t>(topo[head])]) {
      if (s >= 0 && s < n && --indeg[static_cast<std::size_t>(s)] == 0) {
        topo.push_back(s);
      }
    }
  }
  if (static_cast<int>(topo.size()) != n) {
    cyclic_ = true;
    return;
  }
  // Reverse topological accumulation: reach(a) = U_succ ({s} U reach(s)).
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const auto a = static_cast<std::size_t>(*it);
    for (int s : succs[a]) {
      const auto su = static_cast<std::size_t>(s);
      reach_[a * words_ + su / 64] |= std::uint64_t{1} << (su % 64);
      for (std::size_t w = 0; w < words_; ++w) {
        reach_[a * words_ + w] |= reach_[su * words_ + w];
      }
    }
  }
}

namespace {

// Distinct registers instruction `ins` reads, derived from its pre-decoded
// args (kwargs were merged positionally at recompile). Ground truth for the
// conflict relation — deliberately NOT taken from Schedule::reads, which is
// part of the claim being checked.
void collect_reads(const Instr::ArgExpr& a, std::vector<int>& out) {
  switch (a.kind) {
    case Instr::ArgExpr::Kind::Reg:
      if (std::find(out.begin(), out.end(), a.reg) == out.end()) {
        out.push_back(a.reg);
      }
      break;
    case Instr::ArgExpr::Kind::List:
      for (const auto& item : a.items) collect_reads(item, out);
      break;
    case Instr::ArgExpr::Kind::Imm:
      break;
  }
}

std::string instr_name(const CompiledGraph& cg, int i) {
  const Node* n = cg.instrs()[static_cast<std::size_t>(i)].node;
  if (n) return n->name();
  std::string s = "#";
  s += std::to_string(i);
  return s;
}

}  // namespace

void check_schedule_race(const CompiledGraph& cg, const Schedule& sched,
                         std::vector<Diagnostic>& out) {
  const auto& instrs = cg.instrs();
  const int n = static_cast<int>(instrs.size());
  if (static_cast<int>(sched.succs.size()) != n) {
    emit(out, "schedule.race", Severity::Error, nullptr, "",
         "schedule has " + std::to_string(sched.succs.size()) +
             " successor lists but the tape has " + std::to_string(n) +
             " instructions",
         "the schedule was built for a different tape");
    return;
  }

  const HappensBefore hb(n, sched.succs);
  if (hb.cyclic()) {
    emit(out, "schedule.race", Severity::Error, nullptr, "",
         "schedule edges form a cycle: no happens-before order exists",
         "every conflicting access pair below the cycle is unordered");
    return;
  }

  // Unique producer per register, from the tape.
  std::vector<int> producer(static_cast<std::size_t>(cg.num_registers()), -1);
  for (int i = 0; i < n; ++i) {
    const int r = instrs[static_cast<std::size_t>(i)].out_reg;
    if (r < 0) continue;
    const auto ru = static_cast<std::size_t>(r);
    if (producer[ru] >= 0) {
      // Write/write conflict on one register: the writers themselves must
      // be ordered (schedule.coverage separately flags the double write).
      if (!hb.ordered(producer[ru], i) && !hb.ordered(i, producer[ru])) {
        const Node* node = instrs[static_cast<std::size_t>(i)].node;
        emit(out, "schedule.race", Severity::Error, node,
             node ? node->name() : "",
             "instructions " + instr_name(cg, producer[ru]) + " and " +
                 instr_name(cg, i) + " both write register " +
                 std::to_string(r) + " with no happens-before path",
             "unordered write/write conflict");
      }
    }
    producer[ru] = i;
  }

  // Every read must be ordered after the register's producer (RAW), and the
  // schedule's ref-count for the register must cover all readers (a low
  // count frees the value while a reader may still run — a read/free race).
  std::vector<int> actual_reads(static_cast<std::size_t>(cg.num_registers()),
                                0);
  std::vector<int> reads;
  for (int i = 0; i < n; ++i) {
    reads.clear();
    for (const auto& a : instrs[static_cast<std::size_t>(i)].args) {
      collect_reads(a, reads);
    }
    for (int r : reads) {
      if (r < 0 || r >= cg.num_registers()) continue;
      ++actual_reads[static_cast<std::size_t>(r)];
      const int p = producer[static_cast<std::size_t>(r)];
      if (p < 0 || p == i) continue;  // placeholder-filled register
      if (!hb.ordered(p, i)) {
        const Node* node = instrs[static_cast<std::size_t>(i)].node;
        emit(out, "schedule.race", Severity::Error, node,
             node ? node->name() : "",
             "instruction " + instr_name(cg, i) + " reads register " +
                 std::to_string(r) + " written by " + instr_name(cg, p) +
                 " with no happens-before path",
             "unordered read/write conflict: the reader may observe "
             "uninitialized or concurrently-written memory");
      }
    }
  }
  if (!sched.reg_reads.empty()) {
    for (int r = 0; r < cg.num_registers() &&
                    r < static_cast<int>(sched.reg_reads.size());
         ++r) {
      const auto ru = static_cast<std::size_t>(r);
      // Placeholder-filled registers (producer < 0) are covered too: an
      // exhausted ref-count frees the register slot early either way.
      if (sched.reg_reads[ru] < actual_reads[ru]) {
        const Node* node =
            producer[ru] >= 0
                ? instrs[static_cast<std::size_t>(producer[ru])].node
                : nullptr;
        emit(out, "schedule.race", Severity::Error, node,
             node ? node->name() : "",
             "register " + std::to_string(r) + " has " +
                 std::to_string(actual_reads[ru]) +
                 " reading instructions but the schedule ref-counts only " +
                 std::to_string(sched.reg_reads[ru]),
             "the value would be freed while a reader may still run");
      }
    }
  }
}

void check_plan_war_ordering(const CompiledGraph& cg, const Schedule& sched,
                             const TapePlan& plan,
                             std::vector<Diagnostic>& out) {
  const auto& instrs = cg.instrs();
  const auto& ivs = plan.intervals;
  const int n = static_cast<int>(instrs.size());
  if (static_cast<int>(ivs.size()) != n ||
      static_cast<int>(sched.succs.size()) != n) {
    emit(out, "plan.war-ordering", Severity::Error, nullptr, "",
         "plan (" + std::to_string(ivs.size()) + " intervals) / schedule (" +
             std::to_string(sched.succs.size()) +
             " entries) do not match the tape (" + std::to_string(n) +
             " instructions)",
         "stale plan or schedule; re-run passes::compile_planned");
    return;
  }

  const HappensBefore hb(n, sched.succs);
  if (hb.cyclic()) {
    emit(out, "plan.war-ordering", Severity::Error, nullptr, "",
         "schedule edges form a cycle: no happens-before order exists");
    return;
  }

  // Resolve in-place chains to root slots (overlap inside a chain is the
  // point; plan.aliasing validates the chain links themselves).
  std::vector<int> root(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) root[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (!ivs[iu].in_place) continue;
    const int j = ivs[iu].alias_of;
    if (j >= 0 && j < i) root[iu] = root[static_cast<std::size_t>(j)];
  }

  auto require_ordered = [&](int before, int after, const std::string& why) {
    if (hb.ordered(before, after)) return;
    const Node* node = instrs[static_cast<std::size_t>(after)].node;
    emit(out, "plan.war-ordering", Severity::Error, node,
         node ? node->name() : "",
         instr_name(cg, after) + " may run before " + instr_name(cg, before) +
             ": " + why,
         "a planned parallel run could overwrite bytes another instruction "
         "still reads; build_planned_schedule must add this anti-dependency "
         "edge");
  };

  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const auto& a = ivs[iu];
    if (!a.planned) continue;

    // In-place reuse: the overwrite must wait for every other reader of the
    // buffer it claims.
    if (a.in_place && a.alias_of >= 0 && a.alias_of < i) {
      const auto& target = ivs[static_cast<std::size_t>(a.alias_of)];
      for (int r : target.readers) {
        if (r == i) continue;
        require_ordered(r, i,
                        "it overwrites in place the slot of " +
                            instr_name(cg, a.alias_of) + " which " +
                            instr_name(cg, r) + " still reads");
      }
    }

    // Slot reuse across alias chains: the later definition must be ordered
    // after the earlier interval's definition and all of its readers.
    for (int j = i + 1; j < n; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const auto& b = ivs[ju];
      if (!b.planned || root[iu] == root[ju]) continue;
      const bool bytes_overlap =
          a.offset < b.offset + b.padded && b.offset < a.offset + a.padded;
      if (!bytes_overlap) continue;
      require_ordered(i, j,
                      "both define planned intervals sharing arena bytes");
      for (int r : a.readers) {
        if (r == j) continue;
        require_ordered(r, j,
                        "it reuses arena bytes of " + instr_name(cg, i) +
                            " which " + instr_name(cg, r) + " still reads");
      }
    }
  }
}

}  // namespace fxcpp::analysis
