#include "serve/session.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "core/plan_cache.h"
#include "passes/memory_planner.h"

namespace fxcpp::serve {

namespace {

double secs(std::chrono::steady_clock::time_point from,
            std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string SessionStats::to_json() const {
  std::ostringstream os;
  os << "{\"admitted\": " << admitted << ", \"rejected\": " << rejected
     << ", \"completed\": " << completed << ", \"failed\": " << failed
     << ", \"cancelled\": " << cancelled << ", \"expired\": " << expired
     << ", \"batches\": " << batches << ", \"batched_rows\": " << batched_rows
     << ", \"degraded_batches\": " << degraded_batches
     << ", \"late_results\": " << late_results
     << ", \"late_errors\": " << late_errors
     << ", \"peak_batch_rows\": " << peak_batch_rows << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<fx::GraphModule> prepare_for_serving(
    std::shared_ptr<fx::GraphModule> gm, const Tensor& example) {
  fx::PlanCacheOptions co;
  co.bucket_batch_dim = true;  // coalesced row counts land in p2 buckets
  passes::compile_planned(*gm, {example}, co);
  return gm;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<fx::GraphModule> gm,
                                   ServeOptions opts)
    : gm_(std::move(gm)),
      opts_(opts),
      pool_(std::make_shared<rt::ThreadPool>(1)) {
  if (!gm_) throw std::invalid_argument("InferenceSession: null module");
  if (opts_.max_queue_depth == 0) opts_.max_queue_depth = 1;
  if (opts_.max_batch_rows < 1) opts_.max_batch_rows = 1;
  if (opts_.batch_poll.count() < 1) opts_.batch_poll = std::chrono::milliseconds(1);
  if (!gm_->compiled()) gm_->recompile();
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceSession::InferenceSession(std::shared_ptr<fx::GraphModule> gm,
                                   const Tensor& example, ServeOptions opts)
    : InferenceSession(prepare_for_serving(std::move(gm), example), opts) {}

InferenceSession::~InferenceSession() { shutdown(); }

void InferenceSession::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

Ticket InferenceSession::submit(Tensor input, double deadline_seconds) {
  Ticket t;
  t.cancel = std::make_shared<std::atomic<bool>>(false);
  std::promise<Response> promise;
  t.response = promise.get_future();

  const Clock::time_point now = Clock::now();
  Request r;
  r.input = std::move(input);
  r.cancel = t.cancel;
  r.enqueue = now;
  r.deadline = deadline_seconds > 0.0
                   ? now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(deadline_seconds))
                   : Clock::time_point::max();

  if (r.input.dim() < 1) {
    Response resp;
    resp.code = ErrorCode::GuardViolation;
    resp.error = "serve: request tensor must have a batch dim (dim >= 1)";
    promise.set_value(std::move(resp));
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.rejected;
    return t;
  }

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.id = r.id = next_id_++;
    if (!stopping_ && queue_.size() < opts_.max_queue_depth) {
      r.promise = std::move(promise);
      queue_.push_back(std::move(r));
      admitted = true;
    }
  }
  if (admitted) {
    cv_.notify_all();
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.admitted;
    return t;
  }
  Response resp;
  resp.code = ErrorCode::AdmissionRejected;
  resp.error = "serve: request rejected at admission (queue full or session "
               "shutting down)";
  promise.set_value(std::move(resp));
  std::lock_guard<std::mutex> sl(stats_mu_);
  ++stats_.rejected;
  return t;
}

Response InferenceSession::run(Tensor input, double deadline_seconds) {
  Ticket t = submit(std::move(input), deadline_seconds);
  return t.response.get();
}

SessionStats InferenceSession::stats() const {
  std::lock_guard<std::mutex> sl(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

bool InferenceSession::compatible(const Tensor& a, const Tensor& b) {
  if (a.dtype() != b.dtype() || a.dim() != b.dim() || a.dim() < 1) return false;
  for (std::int64_t d = 1; d < a.dim(); ++d) {
    if (a.size(static_cast<int>(d)) != b.size(static_cast<int>(d))) {
      return false;
    }
  }
  return true;
}

void InferenceSession::batcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      batch = form_batch(lock);
    }
    process_batch(std::move(batch));
  }
}

std::vector<InferenceSession::Request> InferenceSession::form_batch(
    std::unique_lock<std::mutex>& lock) {
  std::vector<Request> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (!opts_.batching) return batch;

  std::int64_t rows = batch.front().input.size(0);
  const Clock::time_point flush_at =
      batch.front().enqueue + opts_.max_queue_delay;
  for (;;) {
    // Sweep the queue for members of the head's compatibility class. A
    // compatible request that would overflow max_batch_rows stays queued
    // for its own batch; incompatible ones keep their arrival order.
    for (auto it = queue_.begin();
         it != queue_.end() && rows < opts_.max_batch_rows;) {
      if (compatible(batch.front().input, it->input) &&
          rows + it->input.size(0) <= opts_.max_batch_rows) {
        rows += it->input.size(0);
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (rows >= opts_.max_batch_rows || stopping_) break;
    if (Clock::now() >= flush_at) break;
    // Wait for more traffic until the head's flush point; a submit() or
    // shutdown() notifies cv_ and re-runs the sweep.
    if (cv_.wait_until(lock, flush_at) == std::cv_status::timeout) break;
  }
  return batch;
}

void InferenceSession::respond_error(Request& r, ErrorCode code,
                                     const std::string& msg) {
  if (r.answered) return;
  Response resp;
  resp.code = code;
  resp.error = msg;
  resp.total_seconds = secs(r.enqueue, Clock::now());
  r.promise.set_value(std::move(resp));
  r.answered = true;
}

void InferenceSession::respond_ok(Request& r, Tensor out,
                                  std::int64_t batch_rows,
                                  std::size_t batch_requests,
                                  Clock::time_point start) {
  if (r.answered) return;
  Response resp;
  resp.ok = true;
  resp.output = std::move(out);
  resp.batch_rows = batch_rows;
  resp.batch_requests = batch_requests;
  resp.queue_seconds = secs(r.enqueue, start);
  resp.total_seconds = secs(r.enqueue, Clock::now());
  r.promise.set_value(std::move(resp));
  r.answered = true;
}

void InferenceSession::process_batch(std::vector<Request> batch) {
  // Weed requests already dead before execution starts.
  const Clock::time_point now0 = Clock::now();
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (r.cancel && r.cancel->load()) {
      respond_error(r, ErrorCode::Cancelled, "serve: cancelled in queue");
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.cancelled;
    } else if (r.deadline <= now0) {
      respond_error(r, ErrorCode::DeadlineExceeded,
                    "serve: deadline expired in queue");
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.expired;
    } else {
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) return;

  std::vector<Tensor> inputs;
  inputs.reserve(live.size());
  std::int64_t rows = 0;
  for (const Request& r : live) {
    inputs.push_back(r.input);
    rows += r.input.size(0);
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.batches;
    stats_.batched_rows += static_cast<std::uint64_t>(rows);
    stats_.peak_batch_rows = std::max(stats_.peak_batch_rows, rows);
  }

  // One planned run over the coalesced batch, on the session's private
  // pool. The TaskGroup pins the pool and supplies the watch-loop seam:
  // wait_for's post-deadline contract guarantees a late result or
  // exception is still observable after we time out and answer clients.
  const Clock::time_point start = Clock::now();
  auto results = std::make_shared<std::vector<Tensor>>();
  rt::TaskGroup group(pool_);
  group.run([this, inputs = std::move(inputs), results] {
    *results = gm_->run_planned_batched(inputs);
  });

  std::exception_ptr batch_err;
  for (;;) {
    bool done = false;
    try {
      done = group.wait_for(opts_.batch_poll);
    } catch (...) {
      batch_err = std::current_exception();
      done = true;
    }
    if (done) break;
    // Mid-run sweep: answer cancelled/expired requests now — their batch
    // slot keeps computing (cooperative batch, no per-row preemption), and
    // the eventual result is counted late, not delivered.
    const Clock::time_point now = Clock::now();
    for (Request& r : live) {
      if (r.answered) continue;
      if (r.cancel && r.cancel->load()) {
        respond_error(r, ErrorCode::Cancelled, "serve: cancelled mid-run");
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.cancelled;
      } else if (r.deadline <= now) {
        respond_error(r, ErrorCode::DeadlineExceeded,
                      "serve: deadline expired mid-run");
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.expired;
      }
    }
  }

  std::size_t unanswered = 0;
  for (const Request& r : live) unanswered += r.answered ? 0 : 1;

  if (batch_err) {
    if (unanswered == 0) {
      // Every member was already answered (deadline/cancel); the error is
      // observed and counted — the contract's "never dropped on the floor".
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.late_errors;
      return;
    }
    if (opts_.resilient) {
      {
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.degraded_batches;
      }
      degrade_requests(live, start);
      return;
    }
    std::string msg;
    try {
      std::rethrow_exception(batch_err);
    } catch (const ExecError& e) {
      msg = e.what();
      for (Request& r : live) respond_error(r, e.code(), msg);
    } catch (const std::exception& e) {
      msg = e.what();
      for (Request& r : live) respond_error(r, ErrorCode::NodeFailure, msg);
    }
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.failed += unanswered;
    return;
  }

  // Success: deliver each request its split of the batched output.
  std::uint64_t completed = 0;
  std::uint64_t late = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].answered) {
      ++late;  // result arrived after a deadline/cancel response went out
      continue;
    }
    respond_ok(live[i], std::move((*results)[i]), rows, live.size(), start);
    ++completed;
  }
  std::lock_guard<std::mutex> sl(stats_mu_);
  stats_.completed += completed;
  stats_.late_results += late;
}

void InferenceSession::degrade_requests(std::vector<Request>& reqs,
                                        Clock::time_point start) {
  // Per-request rescue: one poisoned input must fail alone. Guards are
  // specialized to the session's example shape, so they stay off here (the
  // plan-cache path already keys safety by signature); the parallel rung
  // stays off too — the degrade path runs on the batcher thread and wants
  // the serial tape -> interpreter ladder.
  fx::ResilientOptions ro;
  ro.try_parallel = false;
  ro.check_guards = false;
  for (Request& r : reqs) {
    if (r.answered) continue;
    try {
      Tensor out = gm_->run_resilient(r.input, ro);
      respond_ok(r, std::move(out), r.input.size(0), 1, start);
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.completed;
    } catch (const ExecError& e) {
      respond_error(r, e.code(), e.what());
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.failed;
    } catch (const std::exception& e) {
      respond_error(r, ErrorCode::NodeFailure, e.what());
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.failed;
    }
  }
}

}  // namespace fxcpp::serve
