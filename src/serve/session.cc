#include "serve/session.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <sstream>
#include <utility>

#include "core/plan_cache.h"
#include "kernels/dispatch.h"
#include "passes/memory_planner.h"
#include "tensor/pack_cache.h"

namespace fxcpp::serve {

namespace {

double secs(std::chrono::steady_clock::time_point from,
            std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::Low: return "low";
    case Priority::Normal: return "normal";
    case Priority::High: return "high";
  }
  return "?";
}

std::string SessionStats::to_json() const {
  std::ostringstream os;
  os << "{\"admitted\": " << admitted << ", \"rejected\": " << rejected
     << ", \"completed\": " << completed << ", \"failed\": " << failed
     << ", \"cancelled\": " << cancelled << ", \"expired\": " << expired
     << ", \"batches\": " << batches << ", \"batched_rows\": " << batched_rows
     << ", \"degraded_batches\": " << degraded_batches
     << ", \"late_results\": " << late_results
     << ", \"late_errors\": " << late_errors
     << ", \"peak_batch_rows\": " << peak_batch_rows
     << ", \"shed_low\": " << shed_low << ", \"shed_normal\": " << shed_normal
     << ", \"shed_high\": " << shed_high
     << ", \"shed_hopeless\": " << shed_hopeless
     << ", \"breaker_rejected\": " << breaker_rejected
     << ", \"retries\": " << retries
     << ", \"degraded_rung_runs\": " << degraded_rung_runs
     << ", \"by_code\": {";
  for (std::size_t c = 0; c < by_code.size(); ++c) {
    if (c) os << ", ";
    os << "\"" << error_code_name(static_cast<ErrorCode>(c))
       << "\": " << by_code[c];
  }
  os << "}, \"breaker\": " << breaker.to_json()
     << ", \"health\": " << health.to_json()
     << ", \"retry\": " << retry.to_json()
     << ", \"kernels\": {\"isa\": \""
     << kernels::isa_name(kernels::active_isa())
     << "\", \"pack_hits\": " << kernel_pack_hits
     << ", \"pack_misses\": " << kernel_pack_misses
     << ", \"panel_hits\": " << kernel_panel_hits
     << ", \"panel_misses\": " << kernel_panel_misses << "}}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<fx::GraphModule> prepare_for_serving(
    std::shared_ptr<fx::GraphModule> gm, const Tensor& example) {
  fx::PlanCacheOptions co;
  co.bucket_batch_dim = true;  // coalesced row counts land in p2 buckets
  passes::compile_planned(*gm, {example}, co);
  return gm;
}

ServeOptions normalize(ServeOptions opts) {
  if (opts.max_queue_depth == 0) opts.max_queue_depth = 1;
  if (opts.max_batch_rows < 1) opts.max_batch_rows = 1;
  if (opts.batch_poll.count() < 1) opts.batch_poll = std::chrono::milliseconds(1);
  // Derived watermarks: Low sheds at half depth, Normal at three quarters.
  if (opts.shed_low_watermark == 0) {
    opts.shed_low_watermark = std::max<std::size_t>(1, opts.max_queue_depth / 2);
  }
  if (opts.shed_normal_watermark == 0) {
    opts.shed_normal_watermark =
        std::max<std::size_t>(1, opts.max_queue_depth - opts.max_queue_depth / 4);
  }
  opts.shed_normal_watermark =
      std::max(opts.shed_normal_watermark, opts.shed_low_watermark);
  return opts;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<fx::GraphModule> gm,
                                   ServeOptions opts)
    : gm_(std::move(gm)),
      opts_(normalize(opts)),
      pool_(std::make_shared<rt::ThreadPool>(1)),
      breaker_(opts_.breaker),
      health_(opts_.health),
      retry_(opts_.retry) {
  if (!gm_) throw std::invalid_argument("InferenceSession: null module");
  if (!gm_->compiled()) gm_->recompile();
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceSession::InferenceSession(std::shared_ptr<fx::GraphModule> gm,
                                   const Tensor& example, ServeOptions opts)
    : InferenceSession(prepare_for_serving(std::move(gm), example), opts) {}

InferenceSession::~InferenceSession() { shutdown(); }

void InferenceSession::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

Ticket InferenceSession::submit(Tensor input, double deadline_seconds,
                                Priority priority) {
  Ticket t;
  t.cancel = std::make_shared<std::atomic<bool>>(false);
  std::promise<Response> promise;
  t.response = promise.get_future();

  const Clock::time_point now = Clock::now();
  Request r;
  r.input = std::move(input);
  r.cancel = t.cancel;
  r.enqueue = now;
  r.priority = priority;
  r.deadline = deadline_seconds > 0.0
                   ? now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(deadline_seconds))
                   : Clock::time_point::max();

  if (r.input.dim() < 1) {
    Response resp;
    resp.code = ErrorCode::GuardViolation;
    resp.error = "serve: request tensor must have a batch dim (dim >= 1)";
    promise.set_value(std::move(resp));
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.rejected;
    ++stats_.by_code[static_cast<std::size_t>(ErrorCode::GuardViolation)];
    return t;
  }

  // Opt-in hopeless shed: a deadline'd request whose estimated queue wait
  // already exceeds its deadline would only expire in queue — shed it now.
  bool hopeless = false;
  if (opts_.shed_hopeless && deadline_seconds > 0.0) {
    double ema;
    {
      std::lock_guard<std::mutex> sl(stats_mu_);
      ema = ema_run_seconds_;
    }
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = queue_.size();
    }
    const double queued_runs =
        1.0 + static_cast<double>(depth) /
                  static_cast<double>(opts_.max_batch_rows);
    hopeless = ema > 0.0 && ema * queued_runs > deadline_seconds;
  }

  bool admitted = false;
  bool watermark_shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.id = r.id = next_id_++;
    const std::size_t depth = queue_.size();
    const bool shed =
        hopeless || depth >= opts_.max_queue_depth ||
        (priority == Priority::Low && depth >= opts_.shed_low_watermark) ||
        (priority == Priority::Normal &&
         depth >= opts_.shed_normal_watermark);
    watermark_shed = shed && depth < opts_.max_queue_depth && !hopeless;
    if (!stopping_ && !shed) {
      r.promise = std::move(promise);
      queue_.push_back(std::move(r));
      admitted = true;
    }
  }
  if (admitted) {
    cv_.notify_all();
    retry_.on_admitted();
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.admitted;
    return t;
  }
  Response resp;
  resp.code = ErrorCode::AdmissionRejected;
  resp.error = watermark_shed
                   ? std::string("serve: ") + priority_name(priority) +
                         "-priority request shed at queue watermark"
                   : (hopeless
                          ? "serve: request shed (estimated wait exceeds "
                            "deadline)"
                          : "serve: request rejected at admission (queue full "
                            "or session shutting down)");
  promise.set_value(std::move(resp));
  std::lock_guard<std::mutex> sl(stats_mu_);
  ++stats_.rejected;
  ++stats_.by_code[static_cast<std::size_t>(ErrorCode::AdmissionRejected)];
  if (hopeless) {
    ++stats_.shed_hopeless;
  } else {
    // Break sheds down by the priority that was turned away (full-queue
    // and stopping sheds land here too — the priority still tells the
    // operator whose traffic is being lost).
    switch (priority) {
      case Priority::Low: ++stats_.shed_low; break;
      case Priority::Normal: ++stats_.shed_normal; break;
      case Priority::High: ++stats_.shed_high; break;
    }
  }
  return t;
}

Response InferenceSession::run(Tensor input, double deadline_seconds,
                               Priority priority) {
  Ticket t = submit(std::move(input), deadline_seconds, priority);
  return t.response.get();
}

SessionStats InferenceSession::stats() const {
  SessionStats s;
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    s = stats_;
  }
  s.breaker = breaker_.stats();
  s.health = health_.stats();
  s.retry = retry_.stats();
  s.retries = s.retry.retries;
  const PackCache::GlobalStats ks = PackCache::global_stats();
  s.kernel_pack_hits = ks.hits;
  s.kernel_pack_misses = ks.misses;
  s.kernel_panel_hits = ks.panel_hits;
  s.kernel_panel_misses = ks.panel_misses;
  return s;
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

bool InferenceSession::compatible(const Tensor& a, const Tensor& b) {
  if (a.dtype() != b.dtype() || a.dim() != b.dim() || a.dim() < 1) return false;
  for (std::int64_t d = 1; d < a.dim(); ++d) {
    if (a.size(static_cast<int>(d)) != b.size(static_cast<int>(d))) {
      return false;
    }
  }
  return true;
}

void InferenceSession::batcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      batch = form_batch(lock);
    }
    process_batch(std::move(batch));
  }
}

std::vector<InferenceSession::Request> InferenceSession::form_batch(
    std::unique_lock<std::mutex>& lock) {
  std::vector<Request> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Below the PlannedBatched rung requests run one per engine invocation:
  // a degraded engine must not be handed whole batches to take down.
  if (!opts_.batching ||
      health_.rung() != resilience::ExecRung::PlannedBatched) {
    return batch;
  }

  std::int64_t rows = batch.front().input.size(0);
  const Clock::time_point flush_at =
      batch.front().enqueue + opts_.max_queue_delay;
  for (;;) {
    // Sweep the queue for members of the head's compatibility class. A
    // compatible request that would overflow max_batch_rows stays queued
    // for its own batch; incompatible ones keep their arrival order.
    for (auto it = queue_.begin();
         it != queue_.end() && rows < opts_.max_batch_rows;) {
      if (compatible(batch.front().input, it->input) &&
          rows + it->input.size(0) <= opts_.max_batch_rows) {
        rows += it->input.size(0);
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (rows >= opts_.max_batch_rows || stopping_) break;
    if (Clock::now() >= flush_at) break;
    // Wait for more traffic until the head's flush point; a submit() or
    // shutdown() notifies cv_ and re-runs the sweep.
    if (cv_.wait_until(lock, flush_at) == std::cv_status::timeout) break;
  }
  return batch;
}

void InferenceSession::respond_error(Request& r, ErrorCode code,
                                     const std::string& msg) {
  if (r.answered) return;
  Response resp;
  resp.code = code;
  resp.error = msg;
  resp.attempts = r.attempts;
  resp.total_seconds = secs(r.enqueue, Clock::now());
  r.promise.set_value(std::move(resp));
  r.answered = true;
  std::lock_guard<std::mutex> sl(stats_mu_);
  ++stats_.by_code[static_cast<std::size_t>(code)];
}

void InferenceSession::respond_ok(Request& r, Tensor out,
                                  std::int64_t batch_rows,
                                  std::size_t batch_requests,
                                  Clock::time_point start) {
  if (r.answered) return;
  Response resp;
  resp.ok = true;
  resp.output = std::move(out);
  resp.batch_rows = batch_rows;
  resp.batch_requests = batch_requests;
  resp.attempts = r.attempts;
  resp.queue_seconds = secs(r.enqueue, start);
  resp.total_seconds = secs(r.enqueue, Clock::now());
  r.promise.set_value(std::move(resp));
  r.answered = true;
}

void InferenceSession::sync_breaker_trips() {
  const std::uint64_t trips = breaker_.stats().trips;
  if (trips > seen_trips_) {
    seen_trips_ = trips;
    // A tripped engine re-probing straight into full batching re-risks
    // whole batches: force at least Degraded until recovery is earned.
    health_.on_breaker_trip();
  }
}

void InferenceSession::process_batch(std::vector<Request> batch) {
  // Weed requests already dead before execution starts.
  const Clock::time_point now0 = Clock::now();
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (r.cancel && r.cancel->load()) {
      respond_error(r, ErrorCode::Cancelled, "serve: cancelled in queue");
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.cancelled;
    } else if (r.deadline <= now0) {
      respond_error(r, ErrorCode::DeadlineExceeded,
                    "serve: deadline expired in queue");
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.expired;
    } else {
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) return;

  // Circuit breaker gate, per request: rejects fail fast without ever
  // touching the engine; probes run and report back with probe=true.
  {
    std::vector<Request> gated;
    gated.reserve(live.size());
    std::uint64_t rejected = 0;
    for (Request& r : live) {
      switch (breaker_.on_request()) {
        case resilience::BreakerDecision::Reject:
          respond_error(r, ErrorCode::CircuitOpen,
                        "serve: circuit breaker open — request failed fast");
          ++rejected;
          break;
        case resilience::BreakerDecision::Probe:
          r.probe = true;
          gated.push_back(std::move(r));
          break;
        case resilience::BreakerDecision::Admit:
          gated.push_back(std::move(r));
          break;
      }
    }
    if (rejected) {
      std::lock_guard<std::mutex> sl(stats_mu_);
      stats_.breaker_rejected += rejected;
    }
    live = std::move(gated);
  }
  if (live.empty()) return;

  const Clock::time_point start = Clock::now();

  // Broken rung: skip the planned batch entirely — serve each request with
  // a per-request maximally-isolated run (rescue path, interpreter-only).
  if (health_.rung() == resilience::ExecRung::Interpreter) {
    rescue_requests(live, start, /*from_failed_batch=*/false);
    sync_breaker_trips();
    return;
  }

  std::vector<Tensor> inputs;
  inputs.reserve(live.size());
  std::int64_t rows = 0;
  for (Request& r : live) {
    inputs.push_back(r.input);
    rows += r.input.size(0);
    ++r.attempts;
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    ++stats_.batches;
    stats_.batched_rows += static_cast<std::uint64_t>(rows);
    stats_.peak_batch_rows = std::max(stats_.peak_batch_rows, rows);
    if (health_.rung() != resilience::ExecRung::PlannedBatched) {
      ++stats_.degraded_rung_runs;
    }
  }

  // One planned run over the coalesced batch, on the session's private
  // pool. The TaskGroup pins the pool and supplies the watch-loop seam:
  // wait_for's post-deadline contract guarantees a late result or
  // exception is still observable after we time out and answer clients.
  auto results = std::make_shared<std::vector<Tensor>>();
  rt::TaskGroup group(pool_);
  group.run([this, inputs = std::move(inputs), results] {
    *results = gm_->run_planned_batched(inputs, opts_.hooks);
  });

  std::exception_ptr batch_err;
  for (;;) {
    bool done = false;
    try {
      done = group.wait_for(opts_.batch_poll);
    } catch (...) {
      batch_err = std::current_exception();
      done = true;
    }
    if (done) break;
    // Mid-run sweep: answer cancelled/expired requests now — their batch
    // slot keeps computing (cooperative batch, no per-row preemption), and
    // the eventual result is counted late, not delivered.
    const Clock::time_point now = Clock::now();
    for (Request& r : live) {
      if (r.answered) continue;
      if (r.cancel && r.cancel->load()) {
        respond_error(r, ErrorCode::Cancelled, "serve: cancelled mid-run");
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.cancelled;
      } else if (r.deadline <= now) {
        respond_error(r, ErrorCode::DeadlineExceeded,
                      "serve: deadline expired mid-run");
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.expired;
      }
    }
  }

  std::size_t unanswered = 0;
  for (const Request& r : live) unanswered += r.answered ? 0 : 1;

  if (batch_err) {
    health_.record(false);
    if (unanswered == 0) {
      // Every member was already answered (deadline/cancel); the error is
      // observed and counted — the contract's "never dropped on the floor".
      for (Request& r : live) breaker_.on_outcome(false, r.probe);
      sync_breaker_trips();
      std::lock_guard<std::mutex> sl(stats_mu_);
      ++stats_.late_errors;
      return;
    }
    if (opts_.resilient) {
      {
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.degraded_batches;
      }
      rescue_requests(live, start, /*from_failed_batch=*/true);
      sync_breaker_trips();
      return;
    }
    std::string msg;
    try {
      std::rethrow_exception(batch_err);
    } catch (const ExecError& e) {
      msg = e.what();
      for (Request& r : live) respond_error(r, e.code(), msg);
    } catch (const std::exception& e) {
      msg = e.what();
      for (Request& r : live) respond_error(r, ErrorCode::NodeFailure, msg);
    }
    for (Request& r : live) breaker_.on_outcome(false, r.probe);
    sync_breaker_trips();
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.failed += unanswered;
    return;
  }

  // Success: deliver each request its split of the batched output.
  health_.record(true);
  for (Request& r : live) breaker_.on_outcome(true, r.probe);
  std::uint64_t completed = 0;
  std::uint64_t late = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].answered) {
      ++late;  // result arrived after a deadline/cancel response went out
      continue;
    }
    respond_ok(live[i], std::move((*results)[i]), rows, live.size(), start);
    ++completed;
  }
  std::lock_guard<std::mutex> sl(stats_mu_);
  stats_.completed += completed;
  stats_.late_results += late;
  const double run_seconds = secs(start, Clock::now());
  ema_run_seconds_ = ema_run_seconds_ == 0.0
                         ? run_seconds
                         : 0.8 * ema_run_seconds_ + 0.2 * run_seconds;
}

void InferenceSession::rescue_requests(std::vector<Request>& reqs,
                                       Clock::time_point start,
                                       bool from_failed_batch) {
  // Per-request rescue: one poisoned input must fail alone. Guards are
  // specialized to the session's example shape, so they stay off here (the
  // plan-cache path already keys safety by signature); the parallel rung
  // stays off too — the rescue path runs on the batcher thread and wants
  // the serial tape -> interpreter ladder.
  fx::ResilientOptions base;
  base.try_parallel = false;
  base.check_guards = false;
  base.hooks = opts_.hooks;

  for (Request& r : reqs) {
    if (r.answered) {
      // Answered by a deadline/cancel sweep, but the engine run made on its
      // behalf genuinely failed — the breaker still needs that outcome.
      if (from_failed_batch) breaker_.on_outcome(false, r.probe);
      continue;
    }
    bool engine_ok = false;
    bool first = true;
    ErrorCode code = ErrorCode::Unknown;
    std::string msg;
    for (;;) {
      if (!first) {
        // Re-attempts are gated by the retry policy: bounded attempts,
        // budget tokens, and a backoff that must fit the deadline. The
        // first rescue run is free — it's isolation, not a retry.
        double remaining = -1.0;
        if (r.deadline != Clock::time_point::max()) {
          remaining = secs(Clock::now(), r.deadline);
          if (remaining <= 0.0) {
            respond_error(r, ErrorCode::DeadlineExceeded,
                          "serve: deadline expired during rescue");
            std::lock_guard<std::mutex> sl(stats_mu_);
            ++stats_.expired;
            break;
          }
        }
        if (r.cancel && r.cancel->load()) {
          respond_error(r, ErrorCode::Cancelled,
                        "serve: cancelled during rescue");
          std::lock_guard<std::mutex> sl(stats_mu_);
          ++stats_.cancelled;
          break;
        }
        double backoff = 0.0;
        if (!retry_.acquire(code, static_cast<int>(r.attempts) + 1, remaining,
                            r.id, &backoff)) {
          respond_error(r, code, msg);
          std::lock_guard<std::mutex> sl(stats_mu_);
          ++stats_.failed;
          break;
        }
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      first = false;

      // The rung may step down between attempts (this very rescue feeds the
      // health window): Broken narrows the ladder to the Interpreter alone.
      fx::ResilientOptions ro = base;
      const resilience::ExecRung rung = health_.rung();
      if (rung == resilience::ExecRung::Interpreter) ro.try_tape = false;
      if (rung != resilience::ExecRung::PlannedBatched) {
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.degraded_rung_runs;
      }
      ++r.attempts;
      try {
        Tensor out = gm_->run_resilient(r.input, ro);
        health_.record(true);
        engine_ok = true;
        respond_ok(r, std::move(out), r.input.size(0), 1, start);
        std::lock_guard<std::mutex> sl(stats_mu_);
        ++stats_.completed;
        break;
      } catch (const ExecError& e) {
        code = e.code();
        msg = e.what();
      } catch (const std::exception& e) {
        code = ErrorCode::NodeFailure;
        msg = e.what();
      }
      health_.record(false);
    }
    breaker_.on_outcome(engine_ok, r.probe);
    sync_breaker_trips();
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.retries = retry_.stats().retries;
  }
}

}  // namespace fxcpp::serve
