// Closed-loop load generator for InferenceSession (bench/bench_serving and
// examples/fxserve): N client threads, each submitting its next request the
// moment the previous response lands, over a Zipf-flavored row-count mix —
// the "production traffic has a few hot shapes" distribution the plan
// cache and the dynamic batcher are both built for. Reports QPS and
// client-observed p50/p99 latency, and keeps every (input, response) pair
// so callers can bit-check outputs against a reference engine.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/rng.h"
#include "serve/session.h"

namespace fxcpp::serve {

struct LoadOptions {
  int clients = 6;
  int requests_per_client = 60;
  std::int64_t feature_dim = 64;
  double deadline_seconds = 0.0;  // 0 = none
  std::uint64_t seed = 1;
};

struct LoadOutcome {
  Tensor input;
  Response response;
};

struct LoadReport {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_seconds = 0.0;  // over ok responses' submit-to-response time
  double p99_seconds = 0.0;
  double mean_batch_requests = 0.0;  // coalescing actually achieved
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::vector<LoadOutcome> outcomes;  // every request, client-major order
};

// Hot row counts 1/2/4 carry 92% of the mass; the tail is uniform 3..8.
std::int64_t zipf_rows(rt::Rng& rng);

// Deterministic per (seed, rows): repeated requests carry identical bits so
// responses can be bit-checked against a reference run on the same input.
Tensor request_input(std::uint64_t seed, std::int64_t rows, std::int64_t feat);

// Drive `session` closed-loop and aggregate. Blocks until every client
// finished; does not shut the session down.
LoadReport run_closed_loop(InferenceSession& session, const LoadOptions& opts);

}  // namespace fxcpp::serve
