// Closed-loop load generator for InferenceSession (bench/bench_serving,
// bench/bench_chaos and examples/fxserve): N client threads, each
// submitting its next request the moment the previous response lands, over
// a Zipf-flavored row-count mix — the "production traffic has a few hot
// shapes" distribution the plan cache and the dynamic batcher are both
// built for. Reports QPS and client-observed p50/p99 latency, a per-error-
// code outcome histogram (shed vs failed vs late are different facts about
// a serving stack, and the chaos bench gates on them separately), and
// keeps every (input, response) pair so callers can bit-check outputs
// against a reference engine.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "runtime/rng.h"
#include "serve/session.h"

namespace fxcpp::serve {

struct LoadOptions {
  int clients = 6;
  int requests_per_client = 60;
  std::int64_t feature_dim = 64;
  double deadline_seconds = 0.0;  // 0 = none
  std::uint64_t seed = 1;
  // Cycle clients through Low/Normal/High priority (client c gets
  // priority c % 3) instead of all-Normal — exercises watermark shedding.
  bool mixed_priorities = false;
  // Client-side resubmission on shed responses (AdmissionRejected /
  // CircuitOpen): a real client facing a shed retries against the next
  // capacity window. 0 = report the shed as the request's final outcome.
  int resubmit_max = 0;
  double resubmit_backoff_seconds = 0.0005;  // doubled per resubmit, capped
};

struct LoadOutcome {
  Tensor input;
  Response response;  // the FINAL response (after any resubmissions)
  Priority priority = Priority::Normal;
  int resubmits = 0;  // shed responses absorbed before the final one
};

struct LoadReport {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_seconds = 0.0;  // over ok responses' submit-to-response time
  double p99_seconds = 0.0;
  double mean_batch_requests = 0.0;  // coalescing actually achieved
  std::size_t ok = 0;
  // Final outcomes, disjoint by class: `failed` is genuine engine-side
  // failure only — shed (AdmissionRejected/CircuitOpen), expired
  // (DeadlineExceeded) and cancelled final outcomes are counted in their
  // own buckets, never in `failed`.
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t cancelled = 0;
  std::uint64_t client_resubmits = 0;  // total shed responses absorbed
  // Final-outcome error codes (ok responses excluded), indexed by
  // static_cast<ErrorCode>.
  std::array<std::uint64_t, kNumErrorCodes> by_code{};
  std::vector<LoadOutcome> outcomes;  // every request, client-major order
};

// Hot row counts 1/2/4 carry 92% of the mass; the tail is uniform 3..8.
std::int64_t zipf_rows(rt::Rng& rng);

// Deterministic per (seed, rows): repeated requests carry identical bits so
// responses can be bit-checked against a reference run on the same input.
Tensor request_input(std::uint64_t seed, std::int64_t rows, std::int64_t feat);

// Drive `session` closed-loop and aggregate. Blocks until every client
// finished; does not shut the session down.
LoadReport run_closed_loop(InferenceSession& session, const LoadOptions& opts);

}  // namespace fxcpp::serve
