#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "runtime/timer.h"

namespace fxcpp::serve {

std::int64_t zipf_rows(rt::Rng& rng) {
  const double p = rng.uniform(0.0, 1.0);
  if (p < 0.55) return 1;
  if (p < 0.80) return 2;
  if (p < 0.92) return 4;
  return 3 + rng.randint(0, 5);
}

Tensor request_input(std::uint64_t seed, std::int64_t rows,
                     std::int64_t feat) {
  rt::Rng rng(0xF00Du ^ seed);
  std::vector<float> v(static_cast<std::size_t>(rows * feat));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {rows, feat});
}

namespace {

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

bool is_shed(const Response& r) {
  return !r.ok && (r.code == ErrorCode::AdmissionRejected ||
                   r.code == ErrorCode::CircuitOpen);
}

}  // namespace

LoadReport run_closed_loop(InferenceSession& session,
                           const LoadOptions& opts) {
  std::vector<std::vector<LoadOutcome>> per(
      static_cast<std::size_t>(opts.clients));
  rt::Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      rt::Rng rng(opts.seed * 7919 + static_cast<std::uint64_t>(c));
      const Priority prio = opts.mixed_priorities
                                ? static_cast<Priority>(c % 3)
                                : Priority::Normal;
      auto& mine = per[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(opts.requests_per_client));
      for (int i = 0; i < opts.requests_per_client; ++i) {
        const std::int64_t rows = zipf_rows(rng);
        Tensor x = request_input(
            (static_cast<std::uint64_t>(c) << 32) |
                static_cast<std::uint64_t>(i),
            rows, opts.feature_dim);
        LoadOutcome o;
        o.priority = prio;
        // A shed response is the session telling the client "not now":
        // back off and resubmit, up to the configured patience.
        double backoff = opts.resubmit_backoff_seconds;
        for (;;) {
          o.response = session.run(x.clone(), opts.deadline_seconds, prio);
          if (!is_shed(o.response) || o.resubmits >= opts.resubmit_max) break;
          ++o.resubmits;
          if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
            backoff = std::min(backoff * 2.0, 0.02);
          }
        }
        o.input = std::move(x);
        mine.push_back(std::move(o));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  LoadReport r;
  r.wall_seconds = wall.seconds();
  std::vector<double> lat;
  double batch_req_sum = 0.0;
  for (auto& v : per) {
    for (LoadOutcome& o : v) {
      r.client_resubmits += static_cast<std::uint64_t>(o.resubmits);
      if (o.response.ok) {
        ++r.ok;
        lat.push_back(o.response.total_seconds);
        batch_req_sum += static_cast<double>(o.response.batch_requests);
      } else {
        ++r.by_code[static_cast<std::size_t>(o.response.code)];
        if (is_shed(o.response)) {
          ++r.shed;
        } else if (o.response.code == ErrorCode::DeadlineExceeded) {
          ++r.expired;
        } else if (o.response.code == ErrorCode::Cancelled) {
          ++r.cancelled;
        } else {
          ++r.failed;
        }
      }
      r.outcomes.push_back(std::move(o));
    }
  }
  const std::size_t total =
      r.ok + r.failed + r.shed + r.expired + r.cancelled;
  r.qps = r.wall_seconds > 0.0
              ? static_cast<double>(total) / r.wall_seconds
              : 0.0;
  r.p50_seconds = percentile(lat, 0.50);
  r.p99_seconds = percentile(lat, 0.99);
  r.mean_batch_requests = r.ok ? batch_req_sum / static_cast<double>(r.ok) : 0.0;
  return r;
}

}  // namespace fxcpp::serve
