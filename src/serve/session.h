// Inference serving front-end: an onnxruntime-style session over a
// compiled, planned, guarded GraphModule.
//
// The paper treats fx-captured graphs as artifacts to be transformed and
// then deployed; everything below the line already exists in this repo —
// planned tapes, the guard-keyed multi-plan cache (core/plan_cache.h),
// the resilient fallback ladder, TaskGroup deadlines — and this layer is
// the traffic front-end that composes them:
//
//   clients --submit()--> bounded queue --batcher--> run_planned_batched
//                 |                          |               |
//            admission control        dynamic batching   PlanCache hit
//
// Dynamic batching. Single-sample requests whose tensors agree on dtype and
// every dim but dim 0 are coalesced into one batched planned run — the
// serving analogue of the multi-plan cache's batch-dim bucketing: the
// combined row count lands in a power-of-two PlanCache bucket
// (PlanCacheOptions::bucket_batch_dim), so a whole distribution of batch
// sizes executes against a bounded set of cached plans. A batch flushes
// when it reaches ServeOptions::max_batch_rows or when the oldest member
// has waited ServeOptions::max_queue_delay.
//
// Deadlines & cancellation ride on TaskGroup::wait_for's post-deadline
// completion contract (runtime/thread_pool.h): the batcher polls the
// in-flight batch in batch_poll steps, answers any request whose deadline
// expired (or whose cancel token fired) mid-run immediately, and keeps
// polling until the batch quiesces — so a late result or exception is
// always observed (counted in SessionStats::late_results / late_errors),
// never dropped.
//
// Resilience (PR 9). Four cooperating mechanisms wrap the execution path;
// all of them default ON with thresholds that are no-ops for healthy
// traffic:
//
//   * load shedding  — requests carry a Priority; once the queue passes the
//     low/normal watermarks, lower-priority submissions are shed at the
//     door with ErrorCode::AdmissionRejected so paying (High) traffic keeps
//     its latency budget;
//   * circuit breaker — a per-session resilience::CircuitBreaker gates
//     every engine attempt; when the engine is evidently broken the session
//     answers ErrorCode::CircuitOpen immediately instead of burning retry
//     ladders, then probes its way back closed (half-open);
//   * retry/backoff  — a failed request's rescue is re-attempted under
//     resilience::RetryPolicy: bounded attempts, deterministic seeded
//     exponential backoff, a retry budget capping amplification, and
//     deadline awareness (a backoff that outlives the deadline is denied).
//     The FIRST per-request rescue after a failed batch is free — it is
//     the isolation mechanism, not a retry;
//   * health rungs   — a resilience::HealthMonitor watches engine-run
//     outcomes and picks the execution rung: Healthy serves coalesced
//     planned batches, Degraded serves one request per planned run, Broken
//     serves per-request Interpreter runs (maximum isolation). Recovery is
//     earned back one rung at a time.
//
// Failure isolation. A batch run that throws does not poison its
// co-batched requests: the batcher degrades to per-request
// GraphModule::run_resilient calls, so one poisoned input fails alone with
// its own ExecError code while its neighbors still get answers.
//
// Sharing. Multiple concurrent sessions may serve the same GraphModule
// (shared weights): the planned cache path is thread-safe for concurrent
// mixed-shape callers, and each session runs batches on its own private
// execution pool.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/exec_hooks.h"
#include "core/graph_module.h"
#include "resilience/circuit_breaker.h"
#include "resilience/exec_error.h"
#include "resilience/health.h"
#include "resilience/retry_policy.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"

namespace fxcpp::serve {

// Request priority for watermark shedding. Low is shed first, High is shed
// only when the queue is entirely full.
enum class Priority { Low = 0, Normal = 1, High = 2 };

const char* priority_name(Priority p);

struct ServeOptions {
  // Admission bound: submissions beyond this many queued requests are
  // rejected immediately with ErrorCode::AdmissionRejected (shed load at
  // the door instead of growing latency without bound).
  std::size_t max_queue_depth = 256;
  // Flush a forming batch once its combined dim-0 rows reach this.
  std::int64_t max_batch_rows = 16;
  // Flush a forming batch once its oldest member has waited this long
  // (the latency the batcher may add to a lone request). Keep it SHORT:
  // under saturation batches fill from requests that accumulated while the
  // previous run executed, so waiting longer mostly buys dead air (A11
  // measures this directly — see bench/bench_serving.cc).
  std::chrono::microseconds max_queue_delay{250};
  // Poll step of the in-flight watch loop (TaskGroup::wait_for granularity
  // for mid-run deadline/cancellation sweeps).
  std::chrono::milliseconds batch_poll{1};
  // Coalesce compatible requests (false = every request runs alone; the
  // bench's control arm).
  bool batching = true;
  // Degrade a failed batch through per-request run_resilient (false =
  // every co-batched request fails with the batch's error).
  bool resilient = true;

  // --- resilience (PR 9) -------------------------------------------------
  // Queue depth at which Low-priority submissions are shed (0 = derive
  // max_queue_depth / 2 at construction).
  std::size_t shed_low_watermark = 0;
  // Queue depth at which Normal-priority submissions are shed too (0 =
  // derive 3 * max_queue_depth / 4). High priority is only shed at full
  // queue depth.
  std::size_t shed_normal_watermark = 0;
  // Opt-in: shed deadline-carrying submissions whose estimated queue wait
  // (EMA of recent run times x queued runs) already exceeds their deadline
  // — they would only expire in the queue. OFF by default because a
  // deadline request that expires in queue is answered DeadlineExceeded,
  // and callers may depend on that distinction.
  bool shed_hopeless = false;
  // Circuit breaker over engine-run outcomes (breaker.enabled=false turns
  // the gate off entirely).
  resilience::BreakerOptions breaker;
  // Retry/backoff for per-request rescue attempts.
  resilience::RetryOptions retry;
  // Health state machine driving the execution rung.
  resilience::HealthOptions health;
  // Observer hooks threaded into every engine run this session issues
  // (batched, rescue, probe): the chaos harness and anomaly watchdog ride
  // here. Must outlive the session. Not owned.
  fx::ExecHooks* hooks = nullptr;
};

// What a client gets back. `ok` responses carry the output tensor (always
// an owning copy — never a view into batch or arena memory); failures
// carry the ExecError taxonomy code plus the rendered message.
struct Response {
  bool ok = false;
  ErrorCode code = ErrorCode::Unknown;
  std::string error;
  Tensor output;
  std::int64_t batch_rows = 0;     // rows in the run that served this
  std::size_t batch_requests = 0;  // requests coalesced into that run
  std::uint32_t attempts = 0;      // engine runs spent on this request
                                   // (0 = shed/expired before any run)
  double queue_seconds = 0.0;      // submit -> execution start
  double total_seconds = 0.0;      // submit -> response
};

// Handle returned by submit(): the response future plus a cancellation
// token (set true any time; a request cancelled before or during its run
// resolves to ErrorCode::Cancelled).
struct Ticket {
  std::uint64_t id = 0;
  std::future<Response> response;
  std::shared_ptr<std::atomic<bool>> cancel;
};

struct SessionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   // shed at admission (queue full / watermark
                                // / stopping) — shed_* below break it down
  std::uint64_t completed = 0;  // ok responses
  std::uint64_t failed = 0;     // error responses (excl. cancel/deadline)
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;    // deadline exceeded (queue or mid-run)
  std::uint64_t batches = 0;    // planned runs issued
  std::uint64_t batched_rows = 0;     // total rows across those runs
  std::uint64_t degraded_batches = 0; // batches rescued via run_resilient
  std::uint64_t late_results = 0;  // results that landed after the request
                                   // was already answered (deadline/cancel)
  std::uint64_t late_errors = 0;   // batch errors observed after every
                                   // member was already answered
  std::int64_t peak_batch_rows = 0;

  // --- resilience (PR 9) -------------------------------------------------
  std::uint64_t shed_low = 0;     // Low shed at the low watermark
  std::uint64_t shed_normal = 0;  // Normal shed at the normal watermark
  std::uint64_t shed_high = 0;    // High shed at full queue depth
  std::uint64_t shed_hopeless = 0;   // opt-in estimated-wait sheds
  std::uint64_t breaker_rejected = 0;  // answered ErrorCode::CircuitOpen
  std::uint64_t retries = 0;           // rescue re-attempts granted
  std::uint64_t degraded_rung_runs = 0;  // engine runs issued below the
                                         // PlannedBatched rung
  // Error responses by taxonomy code (index = static_cast<ErrorCode>);
  // rendered in to_json keyed by error_code_name.
  std::array<std::uint64_t, kNumErrorCodes> by_code{};
  // Snapshots of the resilience machinery, embedded in to_json.
  resilience::BreakerStats breaker;
  resilience::HealthStats health;
  resilience::RetryStats retry;

  // --- micro-kernel layer (PR 10) ----------------------------------------
  // Process-wide weight-pack / B-panel cache accounting (PackCache); the
  // active SIMD tier is rendered alongside in to_json.
  std::uint64_t kernel_pack_hits = 0;
  std::uint64_t kernel_pack_misses = 0;
  std::uint64_t kernel_panel_hits = 0;
  std::uint64_t kernel_panel_misses = 0;

  std::string to_json() const;
};

// One serving session: owns the request queue, the batcher thread, and a
// private single-worker execution pool. submit() never blocks on
// execution; shutdown() (or the destructor) drains already-admitted
// requests before returning.
class InferenceSession {
 public:
  // Serve an already-prepared module (caller ran passes::compile_planned
  // or accepts unplanned-tape fallback). Recompiles if needed.
  explicit InferenceSession(std::shared_ptr<fx::GraphModule> gm,
                            ServeOptions opts = {});
  // Convenience: prepare the module for serving first —
  // passes::compile_planned at `example` with a batch-dim-bucketed
  // PlanCache — then serve it.
  InferenceSession(std::shared_ptr<fx::GraphModule> gm, const Tensor& example,
                   ServeOptions opts = {});
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // Enqueue one request (tensor-in/tensor-out graphs; dim 0 is the batch
  // dim and may be any size >= 0). `deadline_seconds` > 0 bounds
  // submit-to-response wall clock; an expired request is answered
  // ErrorCode::DeadlineExceeded even while its batch is still running.
  // Admission failures resolve the ticket immediately
  // (ErrorCode::AdmissionRejected) — submit() itself never throws on load.
  Ticket submit(Tensor input, double deadline_seconds = 0.0,
                Priority priority = Priority::Normal);

  // Synchronous convenience: submit and wait.
  Response run(Tensor input, double deadline_seconds = 0.0,
               Priority priority = Priority::Normal);

  // Stop admitting, drain every queued request (they still get real
  // responses), join the batcher. Idempotent; the destructor calls it.
  void shutdown();

  SessionStats stats() const;
  const ServeOptions& options() const { return opts_; }
  const std::shared_ptr<fx::GraphModule>& module() const { return gm_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::uint64_t id = 0;
    Tensor input;
    std::promise<Response> promise;
    std::shared_ptr<std::atomic<bool>> cancel;
    Clock::time_point enqueue;
    Clock::time_point deadline;  // Clock::time_point::max() = none
    Priority priority = Priority::Normal;
    bool answered = false;
    bool probe = false;           // this request's run is a breaker probe
    std::uint32_t attempts = 0;   // engine runs spent so far
  };

  void batcher_loop();
  // Pop the head request and coalesce queued requests of its compatibility
  // class (same dtype + trailing dims) until max_batch_rows or the head's
  // max_queue_delay flush point. Called with `lock` held; may wait on cv_.
  // Coalescing is suppressed below the PlannedBatched health rung.
  std::vector<Request> form_batch(std::unique_lock<std::mutex>& lock);
  void process_batch(std::vector<Request> batch);
  // Per-request rescue: the isolation run after a failed batch (free) plus
  // RetryPolicy-gated re-attempts, each gated on the health rung. Feeds
  // breaker/health outcomes. `from_failed_batch` marks already-answered
  // members' batch outcome as the engine failure it was.
  void rescue_requests(std::vector<Request>& reqs, Clock::time_point start,
                       bool from_failed_batch);
  // Poll breaker trips observed by the batcher; forces the health machine
  // to at least Degraded on a fresh trip.
  void sync_breaker_trips();
  static bool compatible(const Tensor& a, const Tensor& b);

  void respond_error(Request& r, ErrorCode code, const std::string& msg);
  void respond_ok(Request& r, Tensor out, std::int64_t batch_rows,
                  std::size_t batch_requests, Clock::time_point start);

  std::shared_ptr<fx::GraphModule> gm_;
  ServeOptions opts_;
  // Private execution pool: batch runs must not contend with (or be
  // resized under) the process-wide pools; TaskGroup pins it per batch.
  std::shared_ptr<rt::ThreadPool> pool_;

  resilience::CircuitBreaker breaker_;
  resilience::HealthMonitor health_;
  resilience::RetryPolicy retry_;
  std::uint64_t seen_trips_ = 0;  // batcher-thread-only trip watermark

  mutable std::mutex mu_;  // queue_, stopping_, next_id_
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;

  mutable std::mutex stats_mu_;
  SessionStats stats_;
  double ema_run_seconds_ = 0.0;  // guarded by stats_mu_; shed_hopeless

  std::thread batcher_;  // started last in the ctor, joined by shutdown()
};

}  // namespace fxcpp::serve
