// Cache-blocked packed GEMM with fused epilogues — the compute layer under
// ops::matmul / ops::linear / ops::conv2d and the int8 quantized paths,
// modeled on onnxruntime's core/mlas.
//
// Data layout ("panels"): the B (right-hand / weight) matrix is packed once
// into column panels of kPanelWidth columns: panel p holds columns
// [16p, 16p+16), stored k-major — for each k, the 16 column values are
// contiguous. The last panel is zero-padded to full width so kernels always
// load whole vectors (stores are masked by the true column count). The A
// (left-hand / activation) matrix is packed per strip of `mr` rows,
// k-major with the mr row values interleaved per k; strips are padded to mr
// rows with zeros. int8 packs use the same shapes with k rounded up to
// quads (groups of 4) so the AVX-512 VNNI dot-product kernel can consume
// 4 bytes per lane; the activation side is offset by +128 into u8 during
// packing (vpdpbusd is u8 x s8) and the offset is removed exactly via the
// row-sum correction in the requantize epilogue.
//
// Epilogues are applied to the register tile before the store: fp32 bias
// (per output column or per output row), optional ReLU, and the int8
// requantize (scale / zero-point / clamp). ReLU is computed as
// max(acc, +0.0f) in every tier so -0.0 inputs normalize identically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.h"

namespace fxcpp::kernels {

// B panels are kPanelWidth columns wide in every tier, so a packed buffer
// stays valid when the active tier changes mid-process.
inline constexpr std::int64_t kPanelWidth = 16;
// int8 packs group k into quads of this many bytes (VNNI lane width).
inline constexpr std::int64_t kQuad = 4;

inline constexpr std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

// --- fp32 packing ---------------------------------------------------------

// Size in floats of a packed B (k x n) buffer: padded to whole panels.
std::size_t packed_b_f32_size(std::int64_t k, std::int64_t n);
// Pack B[k][n] (row-major, row stride ldb) into panels.
void pack_b_f32_nn(const float* b, std::int64_t ldb, std::int64_t k,
                   std::int64_t n, float* out);
// Pack W[n][k] (row-major, row stride ldw) as B = W^T into panels — the
// nn.Linear weight orientation.
void pack_b_f32_nt(const float* w, std::int64_t ldw, std::int64_t k,
                   std::int64_t n, float* out);

// Size in floats of a packed A (m x k) buffer at strip height mr.
std::size_t packed_a_f32_size(std::int64_t m, std::int64_t k, int mr);
// Pack A[m][k] (row-major, row stride lda) into mr-row strips.
void pack_a_f32(const float* a, std::int64_t lda, std::int64_t m,
                std::int64_t k, int mr, float* out);

// The A-strip height of the active fp32 kernel (cache keys for prepacked A
// must include it; it differs per tier).
int gemm_f32_mr();

// --- fp32 GEMM ------------------------------------------------------------

// C[m][n] (row stride ldc) = A[m][k] (row stride lda) @ packed B, with the
// epilogue fused into the store:
//   bias_col — adds bias_col[j] to column j (nn.Linear bias), or null
//   bias_row — adds bias_row[i] to row i (conv2d filter bias), or null
//   relu     — clamps at zero after the bias add
// At most one of bias_col / bias_row may be non-null. When `prepacked_a`
// is non-null it must hold pack_a_f32(..., mr = gemm_f32_mr()) of A and
// `a` / `lda` are ignored. Parallelized over row strips; each worker packs
// its strips into a thread-local workspace.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, const float* packed_b, float* c, std::int64_t ldc,
           const float* bias_col, const float* bias_row, bool relu,
           const float* prepacked_a = nullptr);

// --- int8 packing ---------------------------------------------------------

// Size in bytes of a packed s8 B (k x n) buffer: whole panels, k padded to
// quads. Padded k rows are zero so they contribute nothing to any dot
// product regardless of the activation byte.
std::size_t packed_b_s8_size(std::int64_t k, std::int64_t n);
// Pack W[n][k] (row-major s8, row stride ldw) as B = W^T into quad panels.
void pack_b_s8_nt(const std::int8_t* w, std::int64_t ldw, std::int64_t k,
                  std::int64_t n, std::int8_t* out);

// --- int8 GEMM (u8 activations x s8 weights -> requantized s8) ------------

// Requantize epilogue parameters. For output column j the real-valued
// result is reconstructed as
//   real = (scale_col ? scale_col[j] : scale_all)
//          * float(acc_raw[i][j] - corr_col[j]) + (bias_col ? bias_col[j] : 0)
// and stored as clamp(lrintf(real * inv_out) + out_zp) in int8 — the exact
// formula of the pre-existing scalar quantized kernels. The scales are the
// already-combined sx*sw products (callers combine them exactly the way
// their legacy kernel did, preserving bit-parity). corr_col[j] must be
// (zx + 128) * column_sum_of_weights[j]: the zx part removes the activation
// zero-point, the 128 part removes the u8 packing offset.
struct QuantEpilogue {
  const std::int32_t* corr_col = nullptr;  // required, length n
  const float* scale_col = nullptr;        // per-channel sx*sw[j], or null
  float scale_all = 1.0f;                  // per-tensor sx*sw
  const float* bias_col = nullptr;         // fp32 bias, or null
  float inv_out = 1.0f;                    // 1 / out_scale
  std::int32_t out_zp = 0;
};

// Y[m][n] (row stride ldy, s8) from A[m][k] (row-major s8 activations, row
// stride lda; offset to u8 internally) times packed s8 B. Accumulation is
// exact int32 in every tier, so outputs are bit-identical across tiers.
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda,
           const std::int8_t* packed_b, std::int8_t* y, std::int64_t ldy,
           const QuantEpilogue& ep);

// --- micro-kernel tables (internal, shared between dispatch and drivers) --

// fp32 micro-kernel: one C tile of up to mr x nr. `a` is one packed strip
// (k-major, mr-interleaved), `b` the first of nr/kPanelWidth consecutive
// panels (panel stride kPanelWidth*k floats). Stores only m_sub x n_sub.
using SgemmKernelFn = void (*)(std::int64_t k, const float* a, const float* b,
                               float* c, std::int64_t ldc, std::int64_t m_sub,
                               std::int64_t n_sub, const float* bias_col,
                               const float* bias_row, bool relu);

// int8 micro-kernel: accumulates the raw u8xs8 tile into acc[mr*nr]
// (row-major, fully overwritten). `kq` is the quad count; `a` one packed
// u8 strip (kq quads x mr x 4 bytes), `b` the first of the group's quad
// panels (panel stride kPanelWidth*kq*4 bytes). `n_sub` is the valid column
// count: panel p may only be read when p*kPanelWidth < n_sub (the last
// group of a matrix can be a single panel even when nr is two).
using QgemmKernelFn = void (*)(std::int64_t kq, const std::uint8_t* a,
                               const std::int8_t* b, std::int64_t n_sub,
                               std::int32_t* acc);

struct GemmF32Kernel {
  int mr;
  std::int64_t nr;  // multiple of kPanelWidth
  SgemmKernelFn full;
};

struct GemmS8Kernel {
  int mr;
  std::int64_t nr;  // multiple of kPanelWidth
  QgemmKernelFn accumulate;
};

// Kernel selection for a tier (never null; scalar fills every slot).
const GemmF32Kernel& gemm_f32_kernel(Isa isa);
const GemmS8Kernel& gemm_s8_kernel(Isa isa);

}  // namespace fxcpp::kernels
