// fp32 GEMM driver: strip-parallel over rows of A, panel groups of packed
// B, full-K register accumulation per tile (no KC split — one reduction
// chain per output element keeps per-tier results bit-stable and lets the
// epilogue fire exactly once per element).
#include <vector>

#include "kernels/kernel_impl.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"

namespace fxcpp::kernels {

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, const float* packed_b, float* c, std::int64_t ldc,
           const float* bias_col, const float* bias_row, bool relu,
           const float* prepacked_a) {
  if (m <= 0 || n <= 0) return;
  const GemmF32Kernel& kf = gemm_f32_kernel(active_isa());
  const int mr = kf.mr;
  const std::int64_t strips = (m + mr - 1) / mr;
  // Aim for a handful of strips per chunk so the pool can balance without
  // shredding locality of the packed panels.
  const std::int64_t grain = 4;
  rt::parallel_for(0, strips, grain, [&](std::int64_t s0, std::int64_t s1) {
    thread_local std::vector<float> apack;
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t r0 = s * mr;
      const std::int64_t m_sub = std::min<std::int64_t>(mr, m - r0);
      const float* astrip;
      if (prepacked_a != nullptr) {
        astrip = prepacked_a + s * mr * k;
      } else {
        if (apack.size() < static_cast<std::size_t>(mr) * k) {
          apack.resize(static_cast<std::size_t>(mr) * k);
        }
        pack_a_f32(a + r0 * lda, lda, m_sub, k, mr, apack.data());
        astrip = apack.data();
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kf.nr) {
        const std::int64_t n_sub = std::min<std::int64_t>(kf.nr, n - j0);
        const float* bgroup = packed_b + (j0 / kPanelWidth) * kPanelWidth * k;
        kf.full(k, astrip, bgroup, c + r0 * ldc + j0, ldc, m_sub, n_sub,
                bias_col != nullptr ? bias_col + j0 : nullptr,
                bias_row != nullptr ? bias_row + r0 : nullptr, relu);
      }
    }
  });
}

}  // namespace fxcpp::kernels
