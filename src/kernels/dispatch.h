// Runtime CPU-feature dispatch for the micro-kernel layer (MLAS-style).
//
// Kernel variants are compiled per ISA tier into separate translation units
// (kernel_scalar.cc always; kernel_sse2/avx2/avx512.cc with the matching
// -m flags on x86; kernel_neon.cc on aarch64) and selected once at runtime
// through a dispatch table keyed by the detected CPU features. The scalar
// tier is always available, so every higher tier is an optimization, never
// a requirement.
//
// Tier selection, in precedence order:
//   1. force_isa(tier)            — programmatic override (tests, CLIs)
//   2. FXCPP_KERNEL_ISA=<tier>    — environment override, read once
//   3. detected_isa()             — cpuid / __builtin_cpu_supports probe
// Overrides may only pick a tier at or below the detected one: requesting
// an unsupported tier clamps down to the best supported tier (never up —
// that would execute illegal instructions), and an unparsable value is
// ignored. Forcing a tier therefore always yields a runnable kernel set.
//
// Bit-stability contract: within one tier, a kernel's reduction (kk) order
// is a pure function of the problem shape — every output element is one
// accumulation chain over k in ascending order, independent of M/N position
// or blocking. Repeated runs at a pinned tier are bit-identical, which is
// what the serving layer's bit-equality gates rely on. fp32 results may
// differ *between* tiers (FMA vs mul+add rounding); int8 results are exact
// integer arithmetic in every tier and thus bit-identical across tiers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace fxcpp::kernels {

// Ordered from weakest to strongest; comparisons rely on this.
enum class Isa : int {
  Scalar = 0,
  Sse2 = 1,
  Avx2 = 2,    // AVX2 + FMA
  Avx512 = 3,  // AVX-512 F/BW/VL (+VNNI for int8 when present)
  Neon = 4,    // aarch64 baseline SIMD (not ordered against x86 tiers)
};

// Lower-case canonical tier name ("scalar", "sse2", "avx2", "avx512",
// "neon").
const char* isa_name(Isa isa);

// Case-insensitive parse of a tier name; nullopt for unknown strings.
std::optional<Isa> parse_isa(const std::string& s);

// Best tier this CPU supports (probed once, cached).
Isa detected_isa();

// AVX-512 VNNI (vpdpbusd) available — upgrades the int8 micro-kernel
// within the Avx512 tier. Int8 results are bit-identical either way.
bool detected_int8_vnni();

// The tier kernels will actually run at (override-aware, clamped to
// detected). Cheap enough to call per GEMM.
Isa active_isa();

// Programmatic override (takes precedence over the environment). Requests
// above the detected tier clamp down; nullopt restores env/detected
// behavior. Thread-safe; takes effect for subsequent kernel launches.
void force_isa(std::optional<Isa> isa);

// The environment override that was parsed at startup (nullopt when unset
// or unparsable) — surfaced for diagnostics.
std::optional<Isa> env_isa();

}  // namespace fxcpp::kernels
