#include "kernels/dispatch.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>

namespace fxcpp::kernels {

namespace {

Isa probe_isa() {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return Isa::Neon;
#elif defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Isa::Avx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::Avx2;
  }
  if (__builtin_cpu_supports("sse2")) return Isa::Sse2;
  return Isa::Scalar;
#else
  return Isa::Scalar;
#endif
}

bool probe_vnni() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512vnni") != 0;
#else
  return false;
#endif
}

// Clamp an override to something this CPU can execute. On aarch64 the only
// tiers are Neon and Scalar; x86 tiers order by strength.
Isa clamp_to_detected(Isa want) {
  const Isa have = detected_isa();
  if (have == Isa::Neon) return want == Isa::Scalar ? Isa::Scalar : Isa::Neon;
  if (want == Isa::Neon) return have;  // x86 cannot run Neon
  return static_cast<int>(want) <= static_cast<int>(have) ? want : have;
}

std::optional<Isa> read_env_isa() {
  const char* v = std::getenv("FXCPP_KERNEL_ISA");
  if (v == nullptr || *v == '\0') return std::nullopt;
  return parse_isa(v);
}

// -1 encodes "no forced tier".
std::atomic<int> g_forced{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Sse2: return "sse2";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
    case Isa::Neon: return "neon";
  }
  return "scalar";
}

std::optional<Isa> parse_isa(const std::string& s) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) {
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (low == "scalar") return Isa::Scalar;
  if (low == "sse2") return Isa::Sse2;
  if (low == "avx2") return Isa::Avx2;
  if (low == "avx512" || low == "avx512f") return Isa::Avx512;
  if (low == "neon") return Isa::Neon;
  return std::nullopt;
}

Isa detected_isa() {
  static const Isa isa = probe_isa();
  return isa;
}

bool detected_int8_vnni() {
  static const bool vnni = probe_vnni();
  return vnni;
}

std::optional<Isa> env_isa() {
  static const std::optional<Isa> env = read_env_isa();
  return env;
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return clamp_to_detected(static_cast<Isa>(forced));
  if (const std::optional<Isa> env = env_isa()) return clamp_to_detected(*env);
  return detected_isa();
}

void force_isa(std::optional<Isa> isa) {
  g_forced.store(isa ? static_cast<int>(*isa) : -1, std::memory_order_relaxed);
}

}  // namespace fxcpp::kernels
