// AVX-512 tier: 6x32 fp32 FMA tile (12 zmm accumulators, two 16-wide
// panels). Mask registers cover the column tail, so the epilogue is fully
// vectorized for every tile shape. Compiled with -mavx512f -mavx512bw
// -mavx512vl -mfma.
#include <immintrin.h>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

void sgemm_kernel_avx512(std::int64_t k, const float* a, const float* b,
                         float* c, std::int64_t ldc, std::int64_t m_sub,
                         std::int64_t n_sub, const float* bias_col,
                         const float* bias_row, bool relu) {
  // Panel 1 exists only when the tile spans more than one packed panel;
  // reading it unconditionally would run past the packed buffer.
  const bool two = n_sub > kPanelWidth;
  const float* b1 = b + kPanelWidth * k;
  __m512 acc[kMrAvx512F32][2];
  for (int r = 0; r < kMrAvx512F32; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const __m512 p0 = _mm512_loadu_ps(b + kk * kPanelWidth);
    const __m512 p1 = two ? _mm512_loadu_ps(b1 + kk * kPanelWidth)
                          : _mm512_setzero_ps();
    const float* ak = a + kk * kMrAvx512F32;
    for (int r = 0; r < kMrAvx512F32; ++r) {
      const __m512 ar = _mm512_set1_ps(ak[r]);
      acc[r][0] = _mm512_fmadd_ps(ar, p0, acc[r][0]);
      if (two) acc[r][1] = _mm512_fmadd_ps(ar, p1, acc[r][1]);
    }
  }
  const __mmask16 mk0 =
      n_sub >= kPanelWidth
          ? static_cast<__mmask16>(0xffff)
          : static_cast<__mmask16>((1u << n_sub) - 1u);
  const __mmask16 mk1 =
      !two ? static_cast<__mmask16>(0)
           : (n_sub >= 2 * kPanelWidth
                  ? static_cast<__mmask16>(0xffff)
                  : static_cast<__mmask16>((1u << (n_sub - kPanelWidth)) - 1u));
  const __m512 zero = _mm512_setzero_ps();
  __m512 vb0 = zero;
  __m512 vb1 = zero;
  if (bias_col != nullptr) {
    vb0 = _mm512_maskz_loadu_ps(mk0, bias_col);
    if (two) vb1 = _mm512_maskz_loadu_ps(mk1, bias_col + kPanelWidth);
  }
  for (std::int64_t r = 0; r < m_sub; ++r) {
    __m512 x0 = acc[r][0];
    __m512 x1 = acc[r][1];
    if (bias_col != nullptr) {
      x0 = _mm512_add_ps(x0, vb0);
      x1 = _mm512_add_ps(x1, vb1);
    }
    if (bias_row != nullptr) {
      const __m512 br = _mm512_set1_ps(bias_row[r]);
      x0 = _mm512_add_ps(x0, br);
      x1 = _mm512_add_ps(x1, br);
    }
    if (relu) {
      // VMAXPS returns the second source on equal inputs: (x, 0) maps -0.0
      // to +0.0, matching the scalar `v > 0 ? v : 0`.
      x0 = _mm512_max_ps(x0, zero);
      x1 = _mm512_max_ps(x1, zero);
    }
    float* cr = c + r * ldc;
    _mm512_mask_storeu_ps(cr, mk0, x0);
    if (two) _mm512_mask_storeu_ps(cr + kPanelWidth, mk1, x1);
  }
}

}  // namespace fxcpp::kernels::detail
