// SSE2 tier: 2x16 fp32 tile, mul+add (no FMA at this tier). Compiled with
// -msse2 only; safe on every x86-64 CPU.
#include <emmintrin.h>

#include <cstring>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

void sgemm_kernel_sse2(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu) {
  __m128 acc[kMrSse2F32][4];
  for (int r = 0; r < kMrSse2F32; ++r) {
    for (int v = 0; v < 4; ++v) acc[r][v] = _mm_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bk = b + kk * kPanelWidth;
    const __m128 b0 = _mm_loadu_ps(bk);
    const __m128 b1 = _mm_loadu_ps(bk + 4);
    const __m128 b2 = _mm_loadu_ps(bk + 8);
    const __m128 b3 = _mm_loadu_ps(bk + 12);
    const float* ak = a + kk * kMrSse2F32;
    for (int r = 0; r < kMrSse2F32; ++r) {
      const __m128 ar = _mm_set1_ps(ak[r]);
      acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(ar, b0));
      acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(ar, b1));
      acc[r][2] = _mm_add_ps(acc[r][2], _mm_mul_ps(ar, b2));
      acc[r][3] = _mm_add_ps(acc[r][3], _mm_mul_ps(ar, b3));
    }
  }
  const __m128 zero = _mm_setzero_ps();
  if (n_sub == kNrSse2F32) {
    for (std::int64_t r = 0; r < m_sub; ++r) {
      float* cr = c + r * ldc;
      for (int v = 0; v < 4; ++v) {
        __m128 x = acc[r][v];
        if (bias_col != nullptr) {
          x = _mm_add_ps(x, _mm_loadu_ps(bias_col + v * 4));
        }
        if (bias_row != nullptr) x = _mm_add_ps(x, _mm_set1_ps(bias_row[r]));
        // MAXPS returns the second operand on equal inputs, so (x, 0)
        // normalizes -0.0 to +0.0 exactly like `v > 0 ? v : 0`.
        if (relu) x = _mm_max_ps(x, zero);
        _mm_storeu_ps(cr + v * 4, x);
      }
    }
    return;
  }
  // Column tail: spill the tile and finish scalar (SSE2 has no mask store).
  float tile[kMrSse2F32][kNrSse2F32];
  for (int r = 0; r < kMrSse2F32; ++r) {
    for (int v = 0; v < 4; ++v) _mm_storeu_ps(&tile[r][v * 4], acc[r][v]);
  }
  for (std::int64_t r = 0; r < m_sub; ++r) {
    float* cr = c + r * ldc;
    for (std::int64_t j = 0; j < n_sub; ++j) {
      float x = tile[r][j];
      if (bias_col != nullptr) x += bias_col[j];
      if (bias_row != nullptr) x += bias_row[r];
      if (relu) x = x > 0.f ? x : 0.f;
      cr[j] = x;
    }
  }
}

}  // namespace fxcpp::kernels::detail
