// int8 GEMM driver. Activations are offset to u8 (+128) while packing the
// strip — the VNNI instruction multiplies u8 x s8 — and the offset is
// removed exactly by corr_col in the requantize epilogue (see kernels.h).
// The epilogue itself is shared scalar code so every tier requantizes
// bit-identically.
#include <cmath>
#include <vector>

#include "kernels/kernel_impl.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"

namespace fxcpp::kernels {

namespace {

// Pack one mr-row strip of s8 activations into the u8 quad layout:
// [kq][mr][4] bytes, +128 offset, pad bytes 128 (x = 0 after correction;
// padded k columns hit zero weights anyway).
void pack_a_strip_u8(const std::int8_t* a, std::int64_t lda, std::int64_t m_sub,
                     std::int64_t k, int mr, std::uint8_t* out) {
  const std::int64_t kq = round_up(k, kQuad) / kQuad;
  for (std::int64_t q = 0; q < kq; ++q) {
    for (int r = 0; r < mr; ++r) {
      std::uint8_t* dst = out + (q * mr + r) * kQuad;
      for (int t = 0; t < kQuad; ++t) {
        const std::int64_t kk = q * kQuad + t;
        dst[t] = (r < m_sub && kk < k)
                     ? static_cast<std::uint8_t>(
                           static_cast<int>(a[r * lda + kk]) + 128)
                     : static_cast<std::uint8_t>(128);
      }
    }
  }
}

inline std::int8_t requantize_one(float real, float inv_out,
                                  std::int32_t out_zp) {
  long q = std::lrintf(real * inv_out) + out_zp;
  if (q < -128) q = -128;
  if (q > 127) q = 127;
  return static_cast<std::int8_t>(q);
}

}  // namespace

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda,
           const std::int8_t* packed_b, std::int8_t* y, std::int64_t ldy,
           const QuantEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  const GemmS8Kernel& ks = gemm_s8_kernel(active_isa());
  const int mr = ks.mr;
  const std::int64_t nr = ks.nr;
  const std::int64_t kq = round_up(k, kQuad) / kQuad;
  const std::int64_t strips = (m + mr - 1) / mr;
  rt::parallel_for(0, strips, 4, [&](std::int64_t s0, std::int64_t s1) {
    thread_local std::vector<std::uint8_t> apack;
    std::vector<std::int32_t> acc(static_cast<std::size_t>(mr) * nr);
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t r0 = s * mr;
      const std::int64_t m_sub = std::min<std::int64_t>(mr, m - r0);
      const std::size_t strip_bytes = static_cast<std::size_t>(kq) * mr * kQuad;
      if (apack.size() < strip_bytes) apack.resize(strip_bytes);
      pack_a_strip_u8(a + r0 * lda, lda, m_sub, k, mr, apack.data());
      for (std::int64_t j0 = 0; j0 < n; j0 += nr) {
        const std::int64_t n_sub = std::min<std::int64_t>(nr, n - j0);
        const std::int8_t* bgroup =
            packed_b + (j0 / kPanelWidth) * kPanelWidth * kq * kQuad;
        ks.accumulate(kq, apack.data(), bgroup, n_sub, acc.data());
        for (std::int64_t r = 0; r < m_sub; ++r) {
          std::int8_t* yr = y + (r0 + r) * ldy + j0;
          const std::int32_t* accr = acc.data() + r * nr;
          for (std::int64_t j = 0; j < n_sub; ++j) {
            const std::int64_t col = j0 + j;
            const std::int32_t v = accr[j] - ep.corr_col[col];
            const float scale =
                ep.scale_col != nullptr ? ep.scale_col[col] : ep.scale_all;
            float real = scale * static_cast<float>(v);
            if (ep.bias_col != nullptr) real += ep.bias_col[col];
            yr[j] = requantize_one(real, ep.inv_out, ep.out_zp);
          }
        }
      }
    }
  });
}

}  // namespace fxcpp::kernels
