// NEON tier (aarch64): 6x16 fp32 tile with vfmaq. int8 stays on the scalar
// kernel — the sdot path needs the dotprod extension, which the baseline
// aarch64 profile does not guarantee.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

void sgemm_kernel_neon(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu) {
  float32x4_t acc[kMrNeonF32][4];
  for (int r = 0; r < kMrNeonF32; ++r) {
    for (int v = 0; v < 4; ++v) acc[r][v] = vdupq_n_f32(0.f);
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bk = b + kk * kPanelWidth;
    const float32x4_t b0 = vld1q_f32(bk);
    const float32x4_t b1 = vld1q_f32(bk + 4);
    const float32x4_t b2 = vld1q_f32(bk + 8);
    const float32x4_t b3 = vld1q_f32(bk + 12);
    const float* ak = a + kk * kMrNeonF32;
    for (int r = 0; r < kMrNeonF32; ++r) {
      const float32x4_t ar = vdupq_n_f32(ak[r]);
      acc[r][0] = vfmaq_f32(acc[r][0], ar, b0);
      acc[r][1] = vfmaq_f32(acc[r][1], ar, b1);
      acc[r][2] = vfmaq_f32(acc[r][2], ar, b2);
      acc[r][3] = vfmaq_f32(acc[r][3], ar, b3);
    }
  }
  const float32x4_t zero = vdupq_n_f32(0.f);
  if (n_sub == kNrNeonF32) {
    for (std::int64_t r = 0; r < m_sub; ++r) {
      float* cr = c + r * ldc;
      for (int v = 0; v < 4; ++v) {
        float32x4_t x = acc[r][v];
        if (bias_col != nullptr) x = vaddq_f32(x, vld1q_f32(bias_col + v * 4));
        if (bias_row != nullptr) x = vaddq_f32(x, vdupq_n_f32(bias_row[r]));
        // vmaxq(x, 0) maps -0.0 to +0.0, matching `v > 0 ? v : 0`.
        if (relu) x = vmaxq_f32(x, zero);
        vst1q_f32(cr + v * 4, x);
      }
    }
    return;
  }
  float tile[kMrNeonF32][kNrNeonF32];
  for (int r = 0; r < kMrNeonF32; ++r) {
    for (int v = 0; v < 4; ++v) vst1q_f32(&tile[r][v * 4], acc[r][v]);
  }
  for (std::int64_t r = 0; r < m_sub; ++r) {
    float* cr = c + r * ldc;
    for (std::int64_t j = 0; j < n_sub; ++j) {
      float x = tile[r][j];
      if (bias_col != nullptr) x += bias_col[j];
      if (bias_row != nullptr) x += bias_row[r];
      if (relu) x = x > 0.f ? x : 0.f;
      cr[j] = x;
    }
  }
}

}  // namespace fxcpp::kernels::detail

#endif  // __aarch64__
