// Panel / strip packers for the micro-kernel layer. Layouts documented in
// kernels.h. Packing fully initializes the padded regions, so sanitizers
// never see kernel reads of uninitialized panel bytes.
#include <cstring>

#include "kernels/kernels.h"

namespace fxcpp::kernels {

std::size_t packed_b_f32_size(std::int64_t k, std::int64_t n) {
  return static_cast<std::size_t>(round_up(n, kPanelWidth) * k);
}

void pack_b_f32_nn(const float* b, std::int64_t ldb, std::int64_t k,
                   std::int64_t n, float* out) {
  const std::int64_t panels = round_up(n, kPanelWidth) / kPanelWidth;
  for (std::int64_t p = 0; p < panels; ++p) {
    const std::int64_t j0 = p * kPanelWidth;
    const std::int64_t jn = std::min<std::int64_t>(kPanelWidth, n - j0);
    float* dst = out + p * kPanelWidth * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* src = b + kk * ldb + j0;
      std::memcpy(dst, src, static_cast<std::size_t>(jn) * sizeof(float));
      if (jn < kPanelWidth) {
        std::memset(dst + jn, 0,
                    static_cast<std::size_t>(kPanelWidth - jn) * sizeof(float));
      }
      dst += kPanelWidth;
    }
  }
}

void pack_b_f32_nt(const float* w, std::int64_t ldw, std::int64_t k,
                   std::int64_t n, float* out) {
  const std::int64_t panels = round_up(n, kPanelWidth) / kPanelWidth;
  for (std::int64_t p = 0; p < panels; ++p) {
    const std::int64_t j0 = p * kPanelWidth;
    const std::int64_t jn = std::min<std::int64_t>(kPanelWidth, n - j0);
    float* dst = out + p * kPanelWidth * k;
    // B[kk][j] = W[j][kk]: gather one weight-row element per column.
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t j = 0; j < jn; ++j) dst[j] = w[(j0 + j) * ldw + kk];
      for (std::int64_t j = jn; j < kPanelWidth; ++j) dst[j] = 0.f;
      dst += kPanelWidth;
    }
  }
}

std::size_t packed_a_f32_size(std::int64_t m, std::int64_t k, int mr) {
  return static_cast<std::size_t>(round_up(m, mr) * k);
}

void pack_a_f32(const float* a, std::int64_t lda, std::int64_t m,
                std::int64_t k, int mr, float* out) {
  const std::int64_t strips = round_up(m, mr) / mr;
  for (std::int64_t s = 0; s < strips; ++s) {
    const std::int64_t r0 = s * mr;
    const std::int64_t rn = std::min<std::int64_t>(mr, m - r0);
    float* dst = out + s * mr * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t r = 0; r < rn; ++r) dst[r] = a[(r0 + r) * lda + kk];
      for (std::int64_t r = rn; r < mr; ++r) dst[r] = 0.f;
      dst += mr;
    }
  }
}

std::size_t packed_b_s8_size(std::int64_t k, std::int64_t n) {
  return static_cast<std::size_t>(round_up(n, kPanelWidth) *
                                  round_up(k, kQuad));
}

void pack_b_s8_nt(const std::int8_t* w, std::int64_t ldw, std::int64_t k,
                  std::int64_t n, std::int8_t* out) {
  const std::int64_t panels = round_up(n, kPanelWidth) / kPanelWidth;
  const std::int64_t kq = round_up(k, kQuad) / kQuad;
  for (std::int64_t p = 0; p < panels; ++p) {
    const std::int64_t j0 = p * kPanelWidth;
    const std::int64_t jn = std::min<std::int64_t>(kPanelWidth, n - j0);
    std::int8_t* dst = out + p * kPanelWidth * kq * kQuad;
    // Quad layout: for each k-quad, kPanelWidth groups of 4 consecutive k
    // bytes per column. Zero-pad both the column and the k tail — zero
    // weights contribute exactly zero to every dot product.
    for (std::int64_t q = 0; q < kq; ++q) {
      for (std::int64_t j = 0; j < kPanelWidth; ++j) {
        for (std::int64_t b = 0; b < kQuad; ++b) {
          const std::int64_t kk = q * kQuad + b;
          dst[j * kQuad + b] = (j < jn && kk < k)
                                   ? w[(j0 + j) * ldw + kk]
                                   : static_cast<std::int8_t>(0);
        }
      }
      dst += kPanelWidth * kQuad;
    }
  }
}

}  // namespace fxcpp::kernels
