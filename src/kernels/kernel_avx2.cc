// AVX2+FMA tier: 6x16 fp32 FMA tile (12 ymm accumulators) and a 2x16 int8
// tile built from vpmovzxbw/vpmovsxbw + vpmaddwd — exact int32, no
// vpmaddubsw saturation. Compiled with -mavx2 -mfma.
#include <immintrin.h>

#include <cstring>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

namespace {

// Lane masks for a partial 8-wide store/load: lane j active iff j < count.
inline __m256i tail_mask(std::int64_t count) {
  alignas(32) static const std::int32_t kIota[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const __m256i iota = _mm256_load_si256(reinterpret_cast<const __m256i*>(kIota));
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(count)), iota);
}

}  // namespace

void sgemm_kernel_avx2(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu) {
  __m256 acc[kMrAvx2F32][2];
  for (int r = 0; r < kMrAvx2F32; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bk = b + kk * kPanelWidth;
    const __m256 b0 = _mm256_loadu_ps(bk);
    const __m256 b1 = _mm256_loadu_ps(bk + 8);
    const float* ak = a + kk * kMrAvx2F32;
    for (int r = 0; r < kMrAvx2F32; ++r) {
      const __m256 ar = _mm256_broadcast_ss(ak + r);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  const bool full = n_sub == kNrAvx2F32;
  const __m256i mk0 = full ? _mm256_set1_epi32(-1) : tail_mask(n_sub);
  const __m256i mk1 = full ? _mm256_set1_epi32(-1) : tail_mask(n_sub - 8);
  __m256 vb0 = zero;
  __m256 vb1 = zero;
  if (bias_col != nullptr) {
    // Masked-off lanes load as zero; adding them is a no-op.
    vb0 = full ? _mm256_loadu_ps(bias_col) : _mm256_maskload_ps(bias_col, mk0);
    vb1 = full ? _mm256_loadu_ps(bias_col + 8)
               : _mm256_maskload_ps(bias_col + 8, mk1);
  }
  for (std::int64_t r = 0; r < m_sub; ++r) {
    __m256 x0 = acc[r][0];
    __m256 x1 = acc[r][1];
    if (bias_col != nullptr) {
      x0 = _mm256_add_ps(x0, vb0);
      x1 = _mm256_add_ps(x1, vb1);
    }
    if (bias_row != nullptr) {
      const __m256 br = _mm256_set1_ps(bias_row[r]);
      x0 = _mm256_add_ps(x0, br);
      x1 = _mm256_add_ps(x1, br);
    }
    if (relu) {
      // VMAXPS returns the second source on equal inputs: (x, 0) maps -0.0
      // to +0.0, matching the scalar `v > 0 ? v : 0`.
      x0 = _mm256_max_ps(x0, zero);
      x1 = _mm256_max_ps(x1, zero);
    }
    float* cr = c + r * ldc;
    if (full) {
      _mm256_storeu_ps(cr, x0);
      _mm256_storeu_ps(cr + 8, x1);
    } else {
      _mm256_maskstore_ps(cr, mk0, x0);
      if (n_sub > 8) _mm256_maskstore_ps(cr + 8, mk1, x1);
    }
  }
}

void qgemm_kernel_avx2(std::int64_t kq, const std::uint8_t* a,
                       const std::int8_t* b, std::int64_t /*n_sub*/,
                       std::int32_t* acc) {
  // Pair-sum accumulators: accp[r][g] holds, for columns 4g..4g+3, the two
  // vpmaddwd halves of each column's quad dot product in adjacent lanes.
  __m256i accp[kMrAvx2S8][4];
  for (int r = 0; r < kMrAvx2S8; ++r) {
    for (int g = 0; g < 4; ++g) accp[r][g] = _mm256_setzero_si256();
  }
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* bq = b + q * kPanelWidth * kQuad;
    // Sign-extend 16 weight bytes (4 columns x 4 k) to i16 per group.
    __m256i w[4];
    for (int g = 0; g < 4; ++g) {
      w[g] = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bq + g * 16)));
    }
    const std::uint8_t* aq = a + q * kMrAvx2S8 * kQuad;
    for (int r = 0; r < kMrAvx2S8; ++r) {
      std::int32_t quad;
      std::memcpy(&quad, aq + r * kQuad, sizeof(quad));
      // Zero-extend the 4 activation bytes to i16, repeated across lanes:
      // x0,x1,x2,x3,x0,... — pairs align with each column's (k0,k1),(k2,k3).
      const __m256i xq = _mm256_cvtepu8_epi16(_mm_set1_epi32(quad));
      for (int g = 0; g < 4; ++g) {
        accp[r][g] = _mm256_add_epi32(accp[r][g], _mm256_madd_epi16(w[g], xq));
      }
    }
  }
  // Combine adjacent pair-sums: lane 2c + lane 2c+1 -> column 4g + c.
  for (int r = 0; r < kMrAvx2S8; ++r) {
    std::int32_t* accr = acc + r * kNrAvx2S8;
    for (int g = 0; g < 4; ++g) {
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accp[r][g]);
      for (int cidx = 0; cidx < 4; ++cidx) {
        accr[g * 4 + cidx] = lanes[2 * cidx] + lanes[2 * cidx + 1];
      }
    }
  }
}

}  // namespace fxcpp::kernels::detail
