// Scalar reference tier. Every SIMD tier must match this kernel's reduction
// structure (one chain per output element, k ascending); fp32 rounding may
// differ across tiers (mul+add here vs FMA there), int8 is exact everywhere.
#include <algorithm>
#include <cstring>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

void sgemm_kernel_scalar(std::int64_t k, const float* a, const float* b,
                         float* c, std::int64_t ldc, std::int64_t m_sub,
                         std::int64_t n_sub, const float* bias_col,
                         const float* bias_row, bool relu) {
  float acc[kMrScalarF32][kNrScalarF32];
  std::memset(acc, 0, sizeof(acc));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bk = b + kk * kPanelWidth;
    const float* ak = a + kk * kMrScalarF32;
    for (int r = 0; r < kMrScalarF32; ++r) {
      const float ar = ak[r];
      for (std::int64_t j = 0; j < kNrScalarF32; ++j) {
        acc[r][j] += ar * bk[j];
      }
    }
  }
  for (std::int64_t r = 0; r < m_sub; ++r) {
    float* cr = c + r * ldc;
    for (std::int64_t j = 0; j < n_sub; ++j) {
      float v = acc[r][j];
      if (bias_col != nullptr) v += bias_col[j];
      if (bias_row != nullptr) v += bias_row[r];
      if (relu) v = v > 0.f ? v : 0.f;
      cr[j] = v;
    }
  }
}

void qgemm_kernel_scalar(std::int64_t kq, const std::uint8_t* a,
                         const std::int8_t* b, std::int64_t /*n_sub*/,
                         std::int32_t* acc) {
  std::memset(acc, 0,
              sizeof(std::int32_t) * kMrScalarS8 * static_cast<std::size_t>(kNrScalarS8));
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::uint8_t* aq = a + q * kMrScalarS8 * kQuad;
    const std::int8_t* bq = b + q * kPanelWidth * kQuad;
    for (int r = 0; r < kMrScalarS8; ++r) {
      const std::uint8_t* ar = aq + r * kQuad;
      std::int32_t* accr = acc + r * kNrScalarS8;
      for (std::int64_t j = 0; j < kNrScalarS8; ++j) {
        const std::int8_t* bj = bq + j * kQuad;
        std::int32_t s = 0;
        for (int t = 0; t < kQuad; ++t) {
          s += static_cast<std::int32_t>(ar[t]) * static_cast<std::int32_t>(bj[t]);
        }
        accr[j] += s;
      }
    }
  }
}

}  // namespace fxcpp::kernels::detail
