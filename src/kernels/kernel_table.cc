// Dispatch tables: tier -> micro-kernel selection. Table entries reference
// only the symbols compiled for this architecture; the scalar tier backs
// every slot that has no SIMD variant (e.g. int8 on SSE2/NEON, int8 on
// AVX-512 without VNNI falls back to the AVX2 kernel).
#include "kernels/dispatch.h"
#include "kernels/kernel_impl.h"
#include "kernels/kernels.h"

namespace fxcpp::kernels {

namespace {

using namespace detail;

constexpr GemmF32Kernel kF32Scalar{kMrScalarF32, kNrScalarF32,
                                   sgemm_kernel_scalar};
constexpr GemmS8Kernel kS8Scalar{kMrScalarS8, kNrScalarS8, qgemm_kernel_scalar};

#if defined(FXCPP_KERNELS_X86_TIERS)
constexpr GemmF32Kernel kF32Sse2{kMrSse2F32, kNrSse2F32, sgemm_kernel_sse2};
constexpr GemmF32Kernel kF32Avx2{kMrAvx2F32, kNrAvx2F32, sgemm_kernel_avx2};
constexpr GemmS8Kernel kS8Avx2{kMrAvx2S8, kNrAvx2S8, qgemm_kernel_avx2};
constexpr GemmF32Kernel kF32Avx512{kMrAvx512F32, kNrAvx512F32,
                                   sgemm_kernel_avx512};
constexpr GemmS8Kernel kS8Avx512Vnni{kMrAvx512S8, kNrAvx512S8,
                                     qgemm_kernel_avx512vnni};
#endif

#if defined(FXCPP_KERNELS_NEON_TIER)
constexpr GemmF32Kernel kF32Neon{kMrNeonF32, kNrNeonF32, sgemm_kernel_neon};
#endif

}  // namespace

const GemmF32Kernel& gemm_f32_kernel(Isa isa) {
  switch (isa) {
#if defined(FXCPP_KERNELS_X86_TIERS)
    case Isa::Avx512: return kF32Avx512;
    case Isa::Avx2: return kF32Avx2;
    case Isa::Sse2: return kF32Sse2;
#endif
#if defined(FXCPP_KERNELS_NEON_TIER)
    case Isa::Neon: return kF32Neon;
#endif
    default: return kF32Scalar;
  }
}

const GemmS8Kernel& gemm_s8_kernel(Isa isa) {
  switch (isa) {
#if defined(FXCPP_KERNELS_X86_TIERS)
    case Isa::Avx512:
      return detected_int8_vnni() ? kS8Avx512Vnni : kS8Avx2;
    case Isa::Avx2: return kS8Avx2;
#endif
    default: return kS8Scalar;
  }
}

int gemm_f32_mr() { return gemm_f32_kernel(active_isa()).mr; }

}  // namespace fxcpp::kernels
