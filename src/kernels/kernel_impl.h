// Internal: per-tier micro-kernel symbols, referenced by the dispatch
// tables in kernel_table.cc. Each tier lives in its own translation unit so
// it can be compiled with exactly the -m flags it needs; a symbol is only
// linked when its TU is part of the build (architecture-gated in CMake).
#pragma once

#include "kernels/kernels.h"

namespace fxcpp::kernels::detail {

// Always available.
void sgemm_kernel_scalar(std::int64_t k, const float* a, const float* b,
                         float* c, std::int64_t ldc, std::int64_t m_sub,
                         std::int64_t n_sub, const float* bias_col,
                         const float* bias_row, bool relu);
void qgemm_kernel_scalar(std::int64_t kq, const std::uint8_t* a,
                         const std::int8_t* b, std::int64_t n_sub,
                         std::int32_t* acc);

#if defined(__x86_64__) || defined(__i386__)
void sgemm_kernel_sse2(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu);
void sgemm_kernel_avx2(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu);
void qgemm_kernel_avx2(std::int64_t kq, const std::uint8_t* a,
                       const std::int8_t* b, std::int64_t n_sub,
                       std::int32_t* acc);
void sgemm_kernel_avx512(std::int64_t k, const float* a, const float* b,
                         float* c, std::int64_t ldc, std::int64_t m_sub,
                         std::int64_t n_sub, const float* bias_col,
                         const float* bias_row, bool relu);
void qgemm_kernel_avx512vnni(std::int64_t kq, const std::uint8_t* a,
                             const std::int8_t* b, std::int64_t n_sub,
                             std::int32_t* acc);
#endif

#if defined(__aarch64__)
void sgemm_kernel_neon(std::int64_t k, const float* a, const float* b,
                       float* c, std::int64_t ldc, std::int64_t m_sub,
                       std::int64_t n_sub, const float* bias_col,
                       const float* bias_row, bool relu);
#endif

// Tile sizes (must match the kernel definitions).
inline constexpr int kMrScalarF32 = 6;
inline constexpr std::int64_t kNrScalarF32 = 16;
inline constexpr int kMrScalarS8 = 4;
inline constexpr std::int64_t kNrScalarS8 = 16;
inline constexpr int kMrSse2F32 = 2;
inline constexpr std::int64_t kNrSse2F32 = 16;
inline constexpr int kMrAvx2F32 = 6;
inline constexpr std::int64_t kNrAvx2F32 = 16;
inline constexpr int kMrAvx2S8 = 2;
inline constexpr std::int64_t kNrAvx2S8 = 16;
inline constexpr int kMrAvx512F32 = 6;
inline constexpr std::int64_t kNrAvx512F32 = 32;
inline constexpr int kMrAvx512S8 = 4;
inline constexpr std::int64_t kNrAvx512S8 = 32;
inline constexpr int kMrNeonF32 = 6;
inline constexpr std::int64_t kNrNeonF32 = 16;

}  // namespace fxcpp::kernels::detail
