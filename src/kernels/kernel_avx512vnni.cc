// AVX-512 VNNI int8 tier: 4x32 tile, vpdpbusd consuming one activation quad
// (u8, broadcast) against 16 column quads (s8) per instruction. Lives in
// its own TU compiled with -mavx512vnni so the plain AVX-512 fp32 kernel
// never picks up VNNI encodings. Accumulation is exact int32, identical to
// the scalar tier.
#include <immintrin.h>

#include <cstring>

#include "kernels/kernel_impl.h"

namespace fxcpp::kernels::detail {

void qgemm_kernel_avx512vnni(std::int64_t kq, const std::uint8_t* a,
                             const std::int8_t* b, std::int64_t n_sub,
                             std::int32_t* acc) {
  const bool two = n_sub > kPanelWidth;  // panel 1 only exists beyond 16 cols
  const std::int8_t* b1 = b + kPanelWidth * kq * kQuad;
  __m512i accv[kMrAvx512S8][2];
  for (int r = 0; r < kMrAvx512S8; ++r) {
    accv[r][0] = _mm512_setzero_si512();
    accv[r][1] = _mm512_setzero_si512();
  }
  for (std::int64_t q = 0; q < kq; ++q) {
    const __m512i bv0 = _mm512_loadu_si512(b + q * kPanelWidth * kQuad);
    const __m512i bv1 = two ? _mm512_loadu_si512(b1 + q * kPanelWidth * kQuad)
                            : _mm512_setzero_si512();
    const std::uint8_t* aq = a + q * kMrAvx512S8 * kQuad;
    for (int r = 0; r < kMrAvx512S8; ++r) {
      std::int32_t quad;
      std::memcpy(&quad, aq + r * kQuad, sizeof(quad));
      const __m512i xq = _mm512_set1_epi32(quad);
      accv[r][0] = _mm512_dpbusd_epi32(accv[r][0], xq, bv0);
      if (two) accv[r][1] = _mm512_dpbusd_epi32(accv[r][1], xq, bv1);
    }
  }
  for (int r = 0; r < kMrAvx512S8; ++r) {
    std::int32_t* accr = acc + r * kNrAvx512S8;
    _mm512_storeu_si512(accr, accv[r][0]);
    _mm512_storeu_si512(accr + kPanelWidth, accv[r][1]);
  }
}

}  // namespace fxcpp::kernels::detail
