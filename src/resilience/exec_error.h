// ExecError — the structured error taxonomy of the hardened execution
// runtime (src/resilience). One exception type spans all three engines
// (Interpreter, compiled tape, ParallelExecutor) and carries everything a
// production operator needs to act on a failure: a machine-matchable code,
// the failing node's name/op/target, which engine was running, and the
// partial environment state (names of values live at the failure point).
//
// Header-only on purpose, like analysis/diagnostic.h: the engines in
// fxcpp_core throw ExecError without a link-time dependency on
// fxcpp_resilience, while the resilience library (guards, fault injection,
// anomaly detection) builds its policies on the same type.
//
// Annotation flows inside-out: the innermost throw site sets what it knows
// (an anomaly hook knows code + node, a kernel knows nothing), and each
// enclosing layer fills only the fields still unset — node provenance at the
// per-node execution wrapper, engine at the engine boundary, the live-value
// snapshot at the run level. First writer wins, so the most precise
// information survives.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/node.h"
#include "tensor/tensor.h"

namespace fxcpp {

// What went wrong, machine-matchable. run_resilient's fallback ladder keys
// off this: input-shaped codes (arity, guard) abort immediately since no
// engine can fix the caller's inputs, everything else is worth a retry on
// the next engine down.
enum class ErrorCode {
  Unknown,
  ArityMismatch,     // wrong number of inputs for the graph's placeholders
  GuardViolation,    // an input broke its generated GuardSpec
  NodeFailure,       // a node's kernel / module / hook threw
  AllocLimit,        // allocation ceiling breached while the node ran
  NumericAnomaly,    // NaN/Inf detected in a node output (anomaly mode)
  Cancelled,         // cooperative cancellation token observed
  DeadlineExceeded,  // wall-clock deadline expired mid-run
  ScheduleError,     // the dependency-counted schedule failed to cover
  AdmissionRejected, // serving: request refused before execution (queue full,
                     // shed by priority watermark, or session shutting down)
                     // — never reached an engine
  CircuitOpen,       // serving: the session's circuit breaker is Open and
                     // failed the request fast — the engine was not invoked
};

// Number of ErrorCode values. The codes are contiguous from 0, so serving
// stats can keep a per-code histogram in a flat array indexed by
// static_cast<std::size_t>(code); error_code_name covers every slot.
inline constexpr std::size_t kNumErrorCodes =
    static_cast<std::size_t>(ErrorCode::CircuitOpen) + 1;

inline const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::Unknown: return "unknown";
    case ErrorCode::ArityMismatch: return "arity-mismatch";
    case ErrorCode::GuardViolation: return "guard-violation";
    case ErrorCode::NodeFailure: return "node-failure";
    case ErrorCode::AllocLimit: return "alloc-limit";
    case ErrorCode::NumericAnomaly: return "numeric-anomaly";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::ScheduleError: return "schedule-error";
    case ErrorCode::AdmissionRejected: return "admission-rejected";
    case ErrorCode::CircuitOpen: return "circuit-open";
  }
  return "?";
}

// Which execution engine was driving when the failure surfaced.
enum class Engine {
  Unknown,
  Interpreter,  // Interpreter::run (node-by-node, per-node dispatch)
  Tape,         // CompiledGraph::run (serial compiled tape)
  Parallel,     // ParallelExecutor (inter-op dependency-counted schedule)
};

inline const char* engine_name(Engine e) {
  switch (e) {
    case Engine::Unknown: return "unknown";
    case Engine::Interpreter: return "interpreter";
    case Engine::Tape: return "tape";
    case Engine::Parallel: return "parallel";
  }
  return "?";
}

class ExecError : public std::runtime_error {
 public:
  ExecError(ErrorCode code, std::string detail)
      : std::runtime_error(detail), code_(code), detail_(std::move(detail)) {
    render();
  }

  // --- annotation (set-if-unset; returns *this for chaining) -------------
  ExecError& with_node(const fx::Node& n) {
    return with_node_info(n.name(), fx::opcode_name(n.op()), n.target());
  }
  ExecError& with_node_info(std::string name, std::string op,
                            std::string target) {
    if (node_name_.empty()) {
      node_name_ = std::move(name);
      node_op_ = std::move(op);
      node_target_ = std::move(target);
      render();
    }
    return *this;
  }
  ExecError& with_engine(Engine e) {
    if (engine_ == Engine::Unknown && e != Engine::Unknown) {
      engine_ = e;
      render();
    }
    return *this;
  }
  // Names of values computed and still live when the run failed, in graph
  // order (the "partial environment state" a postmortem starts from).
  ExecError& with_env(std::vector<std::string> live) {
    if (live_env_.empty() && !live.empty()) {
      live_env_ = std::move(live);
      render();
    }
    return *this;
  }

  // --- accessors ---------------------------------------------------------
  ErrorCode code() const { return code_; }
  Engine engine() const { return engine_; }
  bool has_node() const { return !node_name_.empty(); }
  const std::string& node_name() const { return node_name_; }
  const std::string& node_op() const { return node_op_; }
  const std::string& node_target() const { return node_target_; }
  const std::string& detail() const { return detail_; }
  const std::vector<std::string>& live_env() const { return live_env_; }

  const char* what() const noexcept override { return what_.c_str(); }

 private:
  void render() {
    what_ = std::string("ExecError[") + error_code_name(code_) + "]";
    what_ += std::string(" engine=") + engine_name(engine_);
    if (!node_name_.empty()) {
      what_ += " at node '" + node_name_ + "' (" + node_op_;
      if (!node_target_.empty()) what_ += " target=" + node_target_;
      what_ += ")";
    }
    what_ += ": " + detail_;
    if (!live_env_.empty()) {
      what_ += " [live:";
      const std::size_t shown = live_env_.size() < 8 ? live_env_.size() : 8;
      for (std::size_t i = 0; i < shown; ++i) what_ += " " + live_env_[i];
      if (live_env_.size() > shown) {
        what_ += " +" + std::to_string(live_env_.size() - shown) + " more";
      }
      what_ += "]";
    }
  }

  ErrorCode code_ = ErrorCode::Unknown;
  Engine engine_ = Engine::Unknown;
  std::string node_name_, node_op_, node_target_;
  std::string detail_;
  std::vector<std::string> live_env_;
  std::string what_;
};

// True for errors the fallback ladder must NOT retry: the inputs themselves
// are wrong, so every engine would fail identically.
inline bool is_input_error(ErrorCode c) {
  return c == ErrorCode::ArityMismatch || c == ErrorCode::GuardViolation;
}

// The one arity-mismatch message all three engines share, so the parity
// tests can assert identical text modulo the engine field.
inline ExecError arity_error(std::size_t expected_placeholders,
                             std::size_t got) {
  return ExecError(ErrorCode::ArityMismatch,
                   "graph takes " + std::to_string(expected_placeholders) +
                       " placeholder input(s) but " + std::to_string(got) +
                       " were provided");
}

// Annotate the in-flight exception with node/engine/env provenance and
// rethrow. Must be called from inside a catch block. Maps the low-level
// exception zoo onto the taxonomy: ExecError passes through gaining only
// its unset fields, AllocLimitError (tensor/Storage ceiling) becomes
// AllocLimit, anything else becomes NodeFailure wrapping the original
// message. All three engines funnel their per-node failures through here,
// which is what makes differential fault injection assert "same code, same
// node" across engines.
[[noreturn]] inline void rethrow_annotated(const fx::Node* node, Engine engine,
                                           std::vector<std::string> live_env =
                                               {}) {
  try {
    throw;
  } catch (ExecError& e) {
    if (node) e.with_node(*node);
    e.with_engine(engine).with_env(std::move(live_env));
    throw;
  } catch (const AllocLimitError& a) {
    ExecError err(ErrorCode::AllocLimit, a.what());
    if (node) err.with_node(*node);
    err.with_engine(engine).with_env(std::move(live_env));
    throw err;
  } catch (const std::exception& ex) {
    ExecError err(ErrorCode::NodeFailure, ex.what());
    if (node) err.with_node(*node);
    err.with_engine(engine).with_env(std::move(live_env));
    throw err;
  } catch (...) {
    ExecError err(ErrorCode::NodeFailure, "unknown exception type");
    if (node) err.with_node(*node);
    err.with_engine(engine).with_env(std::move(live_env));
    throw err;
  }
}

}  // namespace fxcpp
