#include "resilience/chaos.h"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp::resilience {

std::string ChaosStats::to_json() const {
  std::ostringstream os;
  os << "{\"runs\": " << runs << ", \"faulted_runs\": " << faulted_runs
     << ", \"fires\": " << fires << ", \"storm_runs\": " << storm_runs << "}";
  return os.str();
}

ChaosInjector::ChaosInjector(ChaosOptions opts)
    : opts_(std::move(opts)), rng_(opts_.seed) {
  if (opts_.burst_min < 1) opts_.burst_min = 1;
  if (opts_.burst_max < opts_.burst_min) opts_.burst_max = opts_.burst_min;
}

void ChaosInjector::on_run_begin(std::size_t num_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  // A previous attempt may have died past the target without on_node_end
  // (another hook threw): never carry an armed ceiling into a fresh run.
  detail::disarm_injected_ceiling(this);

  const std::uint64_t idx = run_index_++;
  ++stats_.runs;
  armed_ = false;
  seen_begin_ = 0;
  seen_out_ = 0;

  if (opts_.kinds.empty() || num_nodes == 0) return;

  bool fault = false;
  const bool in_storm = opts_.storm_len > 0 && idx >= opts_.storm_start &&
                        idx < opts_.storm_start + opts_.storm_len;
  if (in_storm) {
    fault = true;
    ++stats_.storm_runs;
  } else if (burst_left_ > 0) {
    --burst_left_;
    fault = true;
  } else if (rng_.uniform() < opts_.fault_rate) {
    fault = true;
    burst_left_ = static_cast<int>(
                      rng_.randint(opts_.burst_min, opts_.burst_max)) -
                  1;
  }
  if (!fault) return;

  armed_ = true;
  ++stats_.faulted_runs;
  kind_ = opts_.kinds[static_cast<std::size_t>(
      rng_.randint(0, static_cast<std::int64_t>(opts_.kinds.size()) - 1))];
  target_ordinal_ = static_cast<std::size_t>(
      rng_.randint(0, static_cast<std::int64_t>(num_nodes) - 1));
}

void ChaosInjector::on_node_begin(const fx::Node& n) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t ordinal = seen_begin_++;
  if (!armed_ || ordinal != target_ordinal_) return;
  switch (kind_) {
    case FaultKind::Throw:
      ++stats_.fires;
      throw std::runtime_error("chaos fault at node '" + n.name() + "'");
    case FaultKind::AllocLimit:
      ++stats_.fires;
      detail::arm_injected_ceiling(this);
      break;
    case FaultKind::PoisonNaN:
    case FaultKind::PoisonInf:
      break;  // lands in on_node_output
  }
}

void ChaosInjector::on_node_output(const fx::Node& n, fx::RtValue& out) {
  (void)n;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t ordinal = seen_out_++;
  if (!armed_ || ordinal != target_ordinal_) return;
  if (kind_ != FaultKind::PoisonNaN && kind_ != FaultKind::PoisonInf) return;
  const double bad = kind_ == FaultKind::PoisonNaN
                         ? std::numeric_limits<double>::quiet_NaN()
                         : std::numeric_limits<double>::infinity();
  Tensor* t = nullptr;
  if (fx::rt_is_tensor(out)) {
    t = &std::get<Tensor>(out);
  } else if (std::holds_alternative<std::vector<Tensor>>(out)) {
    auto& ts = std::get<std::vector<Tensor>>(out);
    if (!ts.empty()) t = &ts.front();
  }
  if (!t || !t->defined() || t->dtype() != DType::Float32 || t->numel() == 0) {
    return;  // scheduled a poison the node's output can't carry: a miss
  }
  ++stats_.fires;
  // Same clone discipline as FaultInjector: GetAttr outputs alias module
  // parameters and views alias caller storage — never poison in place.
  Tensor c = t->clone();
  c.set_flat(0, bad);
  *t = std::move(c);
}

void ChaosInjector::on_node_end(const fx::Node& n, const fx::RtValue& out) {
  (void)n;
  (void)out;
  std::lock_guard<std::mutex> lock(mu_);
  // In the serial engines the first on_node_end after arming belongs to the
  // target node itself, so an unconditional owned-disarm scopes the ceiling
  // to exactly that node (no-op when nothing is armed).
  if (kind_ == FaultKind::AllocLimit) detail::disarm_injected_ceiling(this);
}

void ChaosInjector::on_run_end() {
  std::lock_guard<std::mutex> lock(mu_);
  detail::disarm_injected_ceiling(this);
  armed_ = false;
}

ChaosStats ChaosInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fxcpp::resilience
