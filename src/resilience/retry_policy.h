// RetryPolicy — bounded, budgeted, deadline-aware retry with deterministic
// exponential backoff.
//
// Retrying is the other half of the breaker's bargain: engine-local faults
// (a transient injected fault, a poisoned batch neighbor, an allocation
// ceiling) recover on a clean re-run, so a serving session should spend a
// *bounded* amount of extra work before giving a request up. Three bounds,
// all from the serving literature:
//
//   * attempts  — at most max_attempts total tries per request;
//   * budget    — a token bucket refilled by admissions: retries can never
//                 exceed budget_fraction of admitted traffic, so a fault
//                 storm cannot double the offered load ("retry amplification"
//                 is capped even when every request is failing);
//   * deadline  — a retry whose backoff sleep would outlive the request's
//                 remaining deadline budget is pointless; deny it.
//
// Input-shaped errors (arity, guard violations — PR 4's taxonomy) are never
// retried: every engine fails them identically. Shed/cancel codes are final
// by construction.
//
// Backoff is exponential (base * 2^(k-1), clamped to max) with
// *deterministic seeded jitter*: the jitter multiplier is a pure hash of
// (seed, request id, attempt index), so a given request replays the exact
// same schedule every time — the reproducibility the chaos harness and the
// backoff unit test both key on — while different requests still decorrelate.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "resilience/exec_error.h"

namespace fxcpp::resilience {

struct RetryOptions {
  bool enabled = true;
  int max_attempts = 3;  // total tries including the first run
  double base_backoff_seconds = 0.0002;
  double max_backoff_seconds = 0.01;
  // Multiplicative jitter span: the k-th backoff is scaled by a value in
  // [1 - jitter/2, 1 + jitter/2] hashed from (seed, request id, k).
  double jitter = 0.5;
  // Retries may consume at most this fraction of admitted traffic.
  double budget_fraction = 0.25;
  double budget_cap = 32.0;  // max banked tokens
  std::uint64_t seed = 0x5EEDull;
};

struct RetryStats {
  std::uint64_t retries = 0;        // granted
  std::uint64_t budget_denied = 0;  // denied: bucket empty
  std::uint64_t deadline_denied = 0;  // denied: backoff outlives the deadline
  std::string to_json() const;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions opts = {});

  // Codes worth a re-run. Input errors are the caller's bug; shed /
  // cancel / deadline codes are final routing outcomes, not engine faults.
  static bool retryable(ErrorCode c);

  // Deterministic backoff before the retry_index-th retry (1-based) of
  // request `id`. Pure function of (options, id, retry_index).
  double backoff_seconds(std::uint64_t id, int retry_index) const;

  // Accrue retry budget for one admitted request.
  void on_admitted();

  // Ask to retry request `id` whose previous attempt failed with `code`,
  // about to make attempt number `next_attempt` (2 = first retry).
  // `remaining_deadline_seconds` < 0 means no deadline. On success consumes
  // one budget token and stores the backoff to sleep in *backoff_out.
  bool acquire(ErrorCode code, int next_attempt,
               double remaining_deadline_seconds, std::uint64_t id,
               double* backoff_out);

  RetryStats stats() const;
  const RetryOptions& options() const { return opts_; }

 private:
  RetryOptions opts_;
  mutable std::mutex mu_;
  double budget_ = 0.0;
  RetryStats stats_;
};

}  // namespace fxcpp::resilience
