// ChaosInjector — seeded probabilistic/intermittent fault schedules on the
// ExecHooks seam (the serving stack's chaos-soak harness).
//
// FaultInjector makes ONE chosen node fail on demand — the scalpel the
// differential fuzz needs. Chaos testing needs the opposite instrument: a
// TorchProbe-style (PAPERS.md) randomized schedule where *any* run may
// fault, at a node drawn per run, with a kind drawn per run, over thousands
// of runs — and the whole schedule must replay from a seed so a failing
// soak is a bug report, not an anecdote. Three layers compose the schedule:
//
//   * rate      — each engine run faults with probability fault_rate;
//   * bursts    — a faulted run may open a burst: the next burst_len-1 runs
//                 fault too (burst_len seeded in [burst_min, burst_max]),
//                 modeling intermittent correlated faults (a sick shard,
//                 a flapping device) rather than i.i.d. noise;
//   * storm     — a deterministic run-index window [storm_start,
//                 storm_start + storm_len) where EVERY run faults: the
//                 sustained outage that forces the circuit breaker Open so
//                 the bench can watch it re-close through half-open probes.
//
// Faulted runs pick a target by node-event ordinal (engine-agnostic: the
// k-th hook event of the run) and a kind from `kinds`. Poison kinds need an
// AnomalyDetector downstream in the MultiHooks chain to turn the poisoned
// output into a failure — that pairing is what lets the chaos bench assert
// every *successful* response is still bit-equal to the reference.
//
// Scope: one injector observes one session's (serialized) engine runs; all
// state is mutex-guarded, so concurrent node events (ParallelExecutor
// workers) are safe, but two truly overlapping runs would share one draw.
// The serving batcher runs engines one at a time, which is the intended
// deployment.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/exec_hooks.h"
#include "resilience/fault_injection.h"
#include "runtime/rng.h"

namespace fxcpp::resilience {

struct ChaosOptions {
  double fault_rate = 0.05;  // per-run fault probability
  std::uint64_t seed = 1;
  std::vector<FaultKind> kinds = {FaultKind::Throw, FaultKind::PoisonNaN};
  // Intermittency: a rate-drawn fault opens a burst of this many total
  // consecutive faulted runs (seeded draw; 1/1 = independent faults).
  int burst_min = 1;
  int burst_max = 1;
  // Deterministic storm window in run-index space (storm_len = 0 disables).
  std::uint64_t storm_start = 0;
  std::uint64_t storm_len = 0;
};

struct ChaosStats {
  std::uint64_t runs = 0;
  std::uint64_t faulted_runs = 0;  // runs where a fault was scheduled
  std::uint64_t fires = 0;         // faults that actually landed (a poison
                                   // scheduled on a non-float output misses)
  std::uint64_t storm_runs = 0;
  std::string to_json() const;
};

class ChaosInjector : public fx::ExecHooks {
 public:
  explicit ChaosInjector(ChaosOptions opts = {});

  void on_run_begin(std::size_t num_nodes) override;
  void on_node_begin(const fx::Node& n) override;
  void on_node_output(const fx::Node& n, fx::RtValue& out) override;
  void on_node_end(const fx::Node& n, const fx::RtValue& out) override;
  void on_run_end() override;

  ChaosStats stats() const;
  const ChaosOptions& options() const { return opts_; }

 private:
  ChaosOptions opts_;
  mutable std::mutex mu_;
  rt::Rng rng_;
  std::uint64_t run_index_ = 0;
  int burst_left_ = 0;
  // Per-run schedule, drawn in on_run_begin and cleared in on_run_end.
  bool armed_ = false;
  FaultKind kind_ = FaultKind::Throw;
  std::size_t target_ordinal_ = 0;
  std::size_t seen_begin_ = 0;  // node-begin events this run
  std::size_t seen_out_ = 0;    // node-output events this run
  ChaosStats stats_;
};

}  // namespace fxcpp::resilience
