#include "resilience/guards.h"

#include "passes/shape_prop.h"

namespace fxcpp::resilience {

std::size_t generate_guards(fx::GraphModule& gm) {
  std::vector<fx::GuardSpec> specs;
  for (const fx::Node* p : gm.graph().placeholders()) {
    if (!p->has_shape() || !p->has_meta("dtype")) continue;
    specs.push_back(fx::GuardSpec{p->name(), p->shape(), p->dtype()});
  }
  gm.set_guards(std::move(specs));
  return gm.guards().size();
}

bool check_inputs(fx::GraphModule& gm, const std::vector<fx::RtValue>& inputs,
                  GuardMode mode) {
  if (mode == GuardMode::Strict) {
    fx::check_guards_strict(gm, inputs);
    return false;
  }
  try {
    fx::check_guards_strict(gm, inputs);
    return false;
  } catch (const ExecError& e) {
    if (e.code() != ErrorCode::GuardViolation) throw;
    // Permissive refresh: the new inputs define the new contract. ShapeProp
    // needs tensors; a non-tensor input is a violation no re-propagation
    // can absorb, so the original error stands.
    std::vector<Tensor> tensors;
    tensors.reserve(inputs.size());
    for (const fx::RtValue& v : inputs) {
      if (!fx::rt_is_tensor(v)) throw;
      tensors.push_back(std::get<Tensor>(v));
    }
    passes::shape_prop(gm, tensors);
    generate_guards(gm);
    return true;
  }
}

}  // namespace fxcpp::resilience
