#include "resilience/fault_injection.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/tensor.h"

namespace fxcpp::resilience {

namespace detail {

namespace {
// Which injector armed the current thread's allocation ceiling. The Storage
// limit itself is thread-local (tensor.cc), so the ledger must be too.
thread_local const void* t_ceiling_owner = nullptr;
}  // namespace

void arm_injected_ceiling(const void* owner) {
  Storage::set_alloc_limit(1);
  t_ceiling_owner = owner;
}

void disarm_injected_ceiling(const void* owner) {
  if (t_ceiling_owner != owner) return;
  Storage::set_alloc_limit(0);
  t_ceiling_owner = nullptr;
}

bool ceiling_owned_by(const void* owner) { return t_ceiling_owner == owner; }

}  // namespace detail

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Throw: return "throw";
    case FaultKind::PoisonNaN: return "poison-nan";
    case FaultKind::PoisonInf: return "poison-inf";
    case FaultKind::AllocLimit: return "alloc-limit";
  }
  return "?";
}

FaultInjector::FaultInjector(const fx::Node* target, FaultKind kind,
                             int max_fires)
    : target_(target), kind_(kind), remaining_(max_fires) {}

void FaultInjector::reset(int max_fires) {
  remaining_.store(max_fires, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::take_fire() {
  for (;;) {
    int r = remaining_.load(std::memory_order_relaxed);
    if (r < 0) {
      fires_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (r == 0) return false;
    if (remaining_.compare_exchange_weak(r, r - 1,
                                         std::memory_order_relaxed)) {
      fires_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

void FaultInjector::on_run_begin(std::size_t num_nodes) {
  (void)num_nodes;
  // One injector state per attempt: a ceiling leaked by a previous aborted
  // attempt on this thread (the target threw before allocating, or the run
  // died at another node) must not fire inside this fresh attempt.
  detail::disarm_injected_ceiling(this);
}

void FaultInjector::on_run_end() { detail::disarm_injected_ceiling(this); }

void FaultInjector::on_node_begin(const fx::Node& n) {
  if (&n != target_) {
    // The run moved past the target on this thread without on_node_end
    // firing (another hook threw at the target): scrub the leak before an
    // unrelated node's allocation trips it.
    detail::disarm_injected_ceiling(this);
    return;
  }
  switch (kind_) {
    case FaultKind::Throw:
      if (take_fire()) {
        throw std::runtime_error("injected fault at node '" + n.name() + "'");
      }
      break;
    case FaultKind::AllocLimit:
      // Arm the thread-local single-shot ceiling at 1 byte so the node's
      // first allocation on this thread trips it no matter what. Arming
      // relative to the *global* live set would race in the parallel
      // engine: a concurrent worker freeing registers can drop live bytes
      // back under the ceiling before the target allocates. Disarmed in
      // on_node_end (node allocated nothing) or by the trip itself
      // (Storage disarms before throwing AllocLimitError).
      if (take_fire()) detail::arm_injected_ceiling(this);
      break;
    case FaultKind::PoisonNaN:
    case FaultKind::PoisonInf:
      break;  // handled in on_node_output
  }
}

void FaultInjector::on_node_output(const fx::Node& n, fx::RtValue& out) {
  if (&n != target_) return;
  if (kind_ != FaultKind::PoisonNaN && kind_ != FaultKind::PoisonInf) return;
  const double bad = kind_ == FaultKind::PoisonNaN
                         ? std::numeric_limits<double>::quiet_NaN()
                         : std::numeric_limits<double>::infinity();
  // Non-float / non-tensor outputs are left untouched: every engine then
  // agrees the run succeeds, which keeps the differential fuzz comparable.
  Tensor* t = nullptr;
  if (fx::rt_is_tensor(out)) {
    t = &std::get<Tensor>(out);
  } else if (std::holds_alternative<std::vector<Tensor>>(out)) {
    auto& ts = std::get<std::vector<Tensor>>(out);
    if (!ts.empty()) t = &ts.front();
  }
  if (!t || !t->defined() || t->dtype() != DType::Float32 || t->numel() == 0) {
    return;
  }
  if (!take_fire()) return;
  // Poison a CLONE, never the tensor in place: GetAttr outputs are the
  // module's parameter tensors and views share the caller's input storage —
  // in-place poisoning would corrupt state beyond this run.
  Tensor c = t->clone();
  c.set_flat(0, bad);
  *t = std::move(c);
}

void FaultInjector::on_node_end(const fx::Node& n, const fx::RtValue& out) {
  (void)out;
  if (&n != target_) return;
  if (kind_ == FaultKind::AllocLimit) detail::disarm_injected_ceiling(this);
}

}  // namespace fxcpp::resilience
