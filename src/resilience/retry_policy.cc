#include "resilience/retry_policy.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fxcpp::resilience {

namespace {

// splitmix64 — the standard seeding mixer; here it turns (seed, id, k) into
// a uniform jitter draw without any shared RNG state, which is what makes
// backoff_seconds a pure (reproducible) function.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::string RetryStats::to_json() const {
  std::ostringstream os;
  os << "{\"retries\": " << retries << ", \"budget_denied\": " << budget_denied
     << ", \"deadline_denied\": " << deadline_denied << "}";
  return os.str();
}

RetryPolicy::RetryPolicy(RetryOptions opts) : opts_(opts) {
  if (opts_.max_attempts < 1) opts_.max_attempts = 1;
  opts_.budget_fraction = std::max(0.0, opts_.budget_fraction);
  opts_.budget_cap = std::max(1.0, opts_.budget_cap);
  if (opts_.base_backoff_seconds < 0.0) opts_.base_backoff_seconds = 0.0;
  opts_.max_backoff_seconds =
      std::max(opts_.max_backoff_seconds, opts_.base_backoff_seconds);
  opts_.jitter = std::clamp(opts_.jitter, 0.0, 1.0);
}

bool RetryPolicy::retryable(ErrorCode c) {
  switch (c) {
    case ErrorCode::NodeFailure:
    case ErrorCode::AllocLimit:
    case ErrorCode::NumericAnomaly:
    case ErrorCode::ScheduleError:
    case ErrorCode::Unknown:
      return true;
    case ErrorCode::ArityMismatch:     // input error: identical on any engine
    case ErrorCode::GuardViolation:    // input error
    case ErrorCode::Cancelled:         // the caller gave up
    case ErrorCode::DeadlineExceeded:  // no time left by definition
    case ErrorCode::AdmissionRejected: // shed — resubmission is the client's
    case ErrorCode::CircuitOpen:       // call, not the session's
      return false;
  }
  return false;
}

double RetryPolicy::backoff_seconds(std::uint64_t id, int retry_index) const {
  if (retry_index < 1) retry_index = 1;
  double step = opts_.base_backoff_seconds *
                std::pow(2.0, static_cast<double>(retry_index - 1));
  step = std::min(step, opts_.max_backoff_seconds);
  if (opts_.jitter <= 0.0 || step <= 0.0) return step;
  const std::uint64_t h =
      mix64(mix64(opts_.seed ^ id) + static_cast<std::uint64_t>(retry_index));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return step * (1.0 - opts_.jitter / 2.0 + opts_.jitter * u);
}

void RetryPolicy::on_admitted() {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = std::min(opts_.budget_cap, budget_ + opts_.budget_fraction);
}

bool RetryPolicy::acquire(ErrorCode code, int next_attempt,
                          double remaining_deadline_seconds, std::uint64_t id,
                          double* backoff_out) {
  if (!opts_.enabled || next_attempt > opts_.max_attempts || !retryable(code)) {
    return false;
  }
  const double backoff = backoff_seconds(id, next_attempt - 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_deadline_seconds >= 0.0 &&
      backoff >= remaining_deadline_seconds) {
    ++stats_.deadline_denied;
    return false;
  }
  if (budget_ < 1.0) {
    ++stats_.budget_denied;
    return false;
  }
  budget_ -= 1.0;
  ++stats_.retries;
  if (backoff_out) *backoff_out = backoff;
  return true;
}

RetryStats RetryPolicy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fxcpp::resilience
