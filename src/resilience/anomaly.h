// AnomalyDetector — NaN/Inf watchdog riding the ExecHooks seam, modeled on
// torch.autograd.set_detect_anomaly: attach it to any engine and it scans
// every node's output for non-finite values, reporting the *first bad node
// in graph order* together with upstream provenance (which of its producers
// were already bad), so the blame lands on the node that introduced the
// poison rather than the node where the run finally blew up.
//
// Record mode collects findings for a post-run report(); Throw mode raises
// ExecError{NumericAnomaly} at the offending node, which the engines
// annotate and propagate exactly like a kernel failure — deterministically,
// even under the ParallelExecutor (min-schedule-order error wins).
//
// Thread-safe: the ParallelExecutor invokes on_node_end concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/exec_hooks.h"
#include "core/graph_module.h"

namespace fxcpp::resilience {

// Non-finite (NaN or ±inf) element count across a tensor's float values;
// integer/bool tensors are finite by construction and return 0.
std::int64_t count_nonfinite(const Tensor& t);

enum class AnomalyAction {
  Record,  // collect findings, report after the run
  Throw,   // raise ExecError{NumericAnomaly} at the first bad node observed
};

struct AnomalyFinding {
  const fx::Node* node = nullptr;
  std::size_t order = 0;        // node's index in graph order
  std::int64_t bad_count = 0;   // non-finite elements in the output
  std::int64_t total_count = 0; // total elements scanned
};

class AnomalyDetector : public fx::ExecHooks {
 public:
  // `gm` provides the graph-order index used to rank findings
  // deterministically; the module must outlive the detector.
  explicit AnomalyDetector(const fx::GraphModule& gm,
                           AnomalyAction action = AnomalyAction::Record);

  void on_node_end(const fx::Node& n, const fx::RtValue& out) override;

  // Findings in graph order (deterministic across engines/thread counts).
  std::vector<AnomalyFinding> findings() const;
  bool any() const;
  // Earliest bad node in graph order (nullptr when clean).
  const fx::Node* first_bad() const;
  // The root cause: the earliest finding all of whose producer nodes are
  // clean — i.e. the node that *introduced* the non-finite values rather
  // than one that inherited them. nullptr when clean.
  const fx::Node* origin() const;
  // Human-readable summary with per-finding upstream provenance.
  std::string report() const;

  void reset();

 private:
  std::unordered_map<const fx::Node*, std::size_t> order_;
  AnomalyAction action_;
  mutable std::mutex mu_;
  std::map<std::size_t, AnomalyFinding> findings_;  // keyed by graph order
};

}  // namespace fxcpp::resilience
