#include "resilience/anomaly.h"

#include <cmath>

#include "resilience/exec_error.h"

namespace fxcpp::resilience {

std::int64_t count_nonfinite(const Tensor& t) {
  if (!t.defined() || t.numel() == 0) return 0;
  if (t.dtype() != DType::Float32 && t.dtype() != DType::Float64) return 0;
  const Tensor c = t.is_contiguous() ? t : t.contiguous();
  const std::int64_t n = c.numel();
  std::int64_t bad = 0;
  if (c.dtype() == DType::Float32) {
    const float* p = c.data<float>();
    for (std::int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(p[i])) ++bad;
    }
  } else {
    const double* p = c.data<double>();
    for (std::int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(p[i])) ++bad;
    }
  }
  return bad;
}

AnomalyDetector::AnomalyDetector(const fx::GraphModule& gm,
                                 AnomalyAction action)
    : action_(action) {
  const std::vector<fx::Node*> order = gm.graph().nodes();
  for (std::size_t i = 0; i < order.size(); ++i) order_[order[i]] = i;
}

void AnomalyDetector::on_node_end(const fx::Node& n, const fx::RtValue& out) {
  std::int64_t bad = 0, total = 0;
  if (fx::rt_is_tensor(out)) {
    const Tensor& t = std::get<Tensor>(out);
    bad = count_nonfinite(t);
    total = t.defined() ? t.numel() : 0;
  } else if (std::holds_alternative<std::vector<Tensor>>(out)) {
    for (const Tensor& t : std::get<std::vector<Tensor>>(out)) {
      bad += count_nonfinite(t);
      total += t.defined() ? t.numel() : 0;
    }
  }
  if (bad == 0) return;

  auto it = order_.find(&n);
  const std::size_t ord = it == order_.end() ? order_.size() : it->second;
  {
    std::lock_guard<std::mutex> lock(mu_);
    findings_.emplace(ord, AnomalyFinding{&n, ord, bad, total});
  }
  if (action_ == AnomalyAction::Throw) {
    // Thrown from inside the engines' per-node try scope, so it picks up
    // node/engine/env annotation like any kernel failure. The detail is a
    // pure function of the (deterministic) output values, keeping the
    // differential fuzz's cross-engine message comparison exact.
    throw ExecError(ErrorCode::NumericAnomaly,
                    "output contains " + std::to_string(bad) + " of " +
                        std::to_string(total) + " non-finite element(s)")
        .with_node(n);
  }
}

std::vector<AnomalyFinding> AnomalyDetector::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AnomalyFinding> out;
  out.reserve(findings_.size());
  for (const auto& [ord, f] : findings_) out.push_back(f);
  return out;
}

bool AnomalyDetector::any() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !findings_.empty();
}

const fx::Node* AnomalyDetector::first_bad() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_.empty() ? nullptr : findings_.begin()->second.node;
}

const fx::Node* AnomalyDetector::origin() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [ord, f] : findings_) {
    bool inherited = false;
    for (const fx::Node* in : f.node->input_nodes()) {
      auto oit = order_.find(in);
      if (oit != order_.end() && findings_.count(oit->second)) {
        inherited = true;
        break;
      }
    }
    if (!inherited) return f.node;
  }
  return nullptr;
}

std::string AnomalyDetector::report() const {
  const fx::Node* root = origin();  // takes mu_; call before locking
  std::lock_guard<std::mutex> lock(mu_);
  if (findings_.empty()) return "anomaly: no non-finite outputs detected\n";
  std::string s = "anomaly: " + std::to_string(findings_.size()) +
                  " node(s) produced non-finite values";
  if (root) s += "; origin '" + root->name() + "' (" +
                 fx::opcode_name(root->op()) + " target=" + root->target() +
                 ")";
  s += "\n";
  for (const auto& [ord, f] : findings_) {
    s += "  [" + std::to_string(ord) + "] '" + f.node->name() + "' " +
         fx::opcode_name(f.node->op()) + " target=" + f.node->target() + ": " +
         std::to_string(f.bad_count) + "/" + std::to_string(f.total_count) +
         " non-finite";
    std::string bad_inputs;
    for (const fx::Node* in : f.node->input_nodes()) {
      auto oit = order_.find(in);
      if (oit != order_.end() && findings_.count(oit->second)) {
        bad_inputs += bad_inputs.empty() ? "" : ", ";
        bad_inputs += "'" + in->name() + "'";
      }
    }
    s += bad_inputs.empty() ? " (introduced here)"
                            : " (inherited from " + bad_inputs + ")";
    s += "\n";
  }
  return s;
}

void AnomalyDetector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  findings_.clear();
}

}  // namespace fxcpp::resilience
