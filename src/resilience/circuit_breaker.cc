#include "resilience/circuit_breaker.h"

#include <algorithm>
#include <sstream>

namespace fxcpp::resilience {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

std::string BreakerStats::to_json() const {
  std::ostringstream os;
  os << "{\"state\": \"" << breaker_state_name(state)
     << "\", \"admitted\": " << admitted << ", \"rejected\": " << rejected
     << ", \"probes\": " << probes << ", \"trips\": " << trips
     << ", \"reopens\": " << reopens << ", \"closes\": " << closes << "}";
  return os.str();
}

CircuitBreaker::CircuitBreaker(BreakerOptions opts)
    : opts_(opts), rng_(opts.seed) {
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.min_samples == 0) opts_.min_samples = 1;
  if (opts_.consecutive_failures < 1) opts_.consecutive_failures = 1;
  if (opts_.cooldown_rejections < 1) opts_.cooldown_rejections = 1;
  if (opts_.half_open_probes < 1) opts_.half_open_probes = 1;
  opts_.probes_to_close =
      std::clamp(opts_.probes_to_close, 1, opts_.half_open_probes);
  ring_.assign(opts_.window, 0);
}

BreakerDecision CircuitBreaker::on_request() {
  if (!opts_.enabled) return BreakerDecision::Admit;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::Closed:
      ++stats_.admitted;
      return BreakerDecision::Admit;
    case BreakerState::Open:
      ++stats_.rejected;
      if (--open_rejections_left_ <= 0) {
        // Cooldown served: the next caller(s) become half-open probes.
        state_ = BreakerState::HalfOpen;
        probes_outstanding_ = 0;
        probe_successes_ = 0;
      }
      return BreakerDecision::Reject;
    case BreakerState::HalfOpen:
      if (probes_outstanding_ < opts_.half_open_probes) {
        ++probes_outstanding_;
        ++stats_.probes;
        return BreakerDecision::Probe;
      }
      ++stats_.rejected;
      return BreakerDecision::Reject;
  }
  ++stats_.admitted;
  return BreakerDecision::Admit;
}

void CircuitBreaker::on_outcome(bool ok, bool probe) {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (probe) {
    if (state_ != BreakerState::HalfOpen) return;  // stale probe (reset)
    probes_outstanding_ = std::max(0, probes_outstanding_ - 1);
    if (!ok) {
      ++stats_.reopens;
      trip_locked();
      return;
    }
    if (++probe_successes_ >= opts_.probes_to_close) {
      ++stats_.closes;
      close_locked();
    }
    return;
  }
  if (state_ != BreakerState::Closed) {
    // A non-probe run resolving after a trip (e.g. a batch that was already
    // in flight when the breaker opened): its outcome is stale policy-wise.
    return;
  }
  // Slide the window.
  if (ring_count_ == ring_.size()) {
    ring_failures_ -= ring_[ring_pos_];
  } else {
    ++ring_count_;
  }
  ring_[ring_pos_] = ok ? 0 : 1;
  ring_failures_ += ring_[ring_pos_];
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
  consecutive_failures_ = ok ? 0 : consecutive_failures_ + 1;

  const bool streak_trip = consecutive_failures_ >= opts_.consecutive_failures;
  const bool rate_trip =
      ring_count_ >= opts_.min_samples &&
      static_cast<double>(ring_failures_) >=
          opts_.error_rate * static_cast<double>(ring_count_);
  if (streak_trip || rate_trip) {
    ++stats_.trips;
    trip_locked();
  }
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::Open;
  open_rejections_left_ =
      opts_.cooldown_rejections +
      (opts_.cooldown_jitter > 0
           ? static_cast<int>(rng_.randint(0, opts_.cooldown_jitter))
           : 0);
  probes_outstanding_ = 0;
  probe_successes_ = 0;
}

void CircuitBreaker::close_locked() {
  state_ = BreakerState::Closed;
  std::fill(ring_.begin(), ring_.end(), 0);
  ring_pos_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
  consecutive_failures_ = 0;
  probes_outstanding_ = 0;
  probe_successes_ = 0;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BreakerStats s = stats_;
  s.state = state_;
  return s;
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  close_locked();
}

}  // namespace fxcpp::resilience
