#include "resilience/health.h"

#include <algorithm>
#include <sstream>

namespace fxcpp::resilience {

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Broken: return "broken";
  }
  return "?";
}

const char* exec_rung_name(ExecRung r) {
  switch (r) {
    case ExecRung::PlannedBatched: return "planned-batched";
    case ExecRung::PlannedSolo: return "planned-solo";
    case ExecRung::Interpreter: return "interpreter";
  }
  return "?";
}

std::string HealthStats::to_json() const {
  std::ostringstream os;
  os << "{\"state\": \"" << health_state_name(state)
     << "\", \"samples\": " << samples << ", \"failures\": " << failures
     << ", \"degrades\": " << degrades << ", \"recoveries\": " << recoveries
     << "}";
  return os.str();
}

HealthMonitor::HealthMonitor(HealthOptions opts) : opts_(opts) {
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.min_samples == 0) opts_.min_samples = 1;
  if (opts_.recover_successes < 1) opts_.recover_successes = 1;
  opts_.break_error_rate =
      std::max(opts_.break_error_rate, opts_.degrade_error_rate);
  ring_.assign(opts_.window, 0);
}

void HealthMonitor::step_down_locked(HealthState to) {
  if (static_cast<int>(to) <= static_cast<int>(state_)) return;
  state_ = to;
  ++stats_.degrades;
  success_streak_ = 0;
  // Fresh window on every transition: the new rung earns its own record
  // instead of inheriting the old rung's failures (which would otherwise
  // keep a recovered engine pinned down for a full window).
  std::fill(ring_.begin(), ring_.end(), 0);
  ring_pos_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
}

void HealthMonitor::record(bool ok) {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.samples;
  if (!ok) ++stats_.failures;

  if (ring_count_ == ring_.size()) {
    ring_failures_ -= ring_[ring_pos_];
  } else {
    ++ring_count_;
  }
  ring_[ring_pos_] = ok ? 0 : 1;
  ring_failures_ += ring_[ring_pos_];
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
  success_streak_ = ok ? success_streak_ + 1 : 0;

  // Earned upgrade first: a full success streak steps one level up and
  // restarts the climb (Broken recovers through Degraded, never directly).
  if (ok && state_ != HealthState::Healthy &&
      success_streak_ >= opts_.recover_successes) {
    state_ = state_ == HealthState::Broken ? HealthState::Degraded
                                           : HealthState::Healthy;
    ++stats_.recoveries;
    success_streak_ = 0;
    std::fill(ring_.begin(), ring_.end(), 0);
    ring_pos_ = 0;
    ring_count_ = 0;
    ring_failures_ = 0;
    return;
  }

  if (ring_count_ < opts_.min_samples) return;
  const double rate = static_cast<double>(ring_failures_) /
                      static_cast<double>(ring_count_);
  if (rate >= opts_.break_error_rate) {
    step_down_locked(HealthState::Broken);
  } else if (rate >= opts_.degrade_error_rate) {
    step_down_locked(HealthState::Degraded);
  }
}

void HealthMonitor::on_breaker_trip() {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  step_down_locked(HealthState::Degraded);
}

HealthState HealthMonitor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

ExecRung HealthMonitor::rung() const {
  switch (state()) {
    case HealthState::Healthy: return ExecRung::PlannedBatched;
    case HealthState::Degraded: return ExecRung::PlannedSolo;
    case HealthState::Broken: return ExecRung::Interpreter;
  }
  return ExecRung::PlannedBatched;
}

HealthStats HealthMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthStats s = stats_;
  s.state = state_;
  return s;
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = HealthState::Healthy;
  std::fill(ring_.begin(), ring_.end(), 0);
  ring_pos_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
  success_streak_ = 0;
}

}  // namespace fxcpp::resilience
