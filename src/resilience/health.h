// HealthMonitor — Healthy -> Degraded -> Broken state machine that picks
// the serving session's execution rung.
//
// The breaker answers "should we run at all"; the health machine answers
// "on which rung". run_resilient (PR 4) already established the ladder —
// every rung is bit-identical on success, each one trades throughput for
// isolation — and the serving analogue of its parallel -> tape ->
// interpreter ordering is:
//
//   Healthy  -> PlannedBatched : coalesced batches on the planned tape
//               (the fast path: one arena lease + one dispatch per batch)
//   Degraded -> PlannedSolo    : still the planned tape, but one request
//               per run — a single poisoned input can no longer take a
//               whole batch down with it, at the cost of batching's
//               amortization
//   Broken   -> Interpreter    : per-request node-by-node interpretation,
//               no plan/arena/tape state to corrupt — maximum isolation,
//               minimum machinery, the rung of last resort
//
// Downgrades are window-driven (error rate over a sliding window, like the
// breaker but with lower thresholds — degrade *before* tripping); a breaker
// trip also forces at least Degraded, because a tripped engine re-probing
// straight into full batching re-risks whole batches. Upgrades are earned:
// `recover_successes` consecutive successes step one level back up and
// restart the count, so a Broken session probes its way Healthy through
// Degraded rather than flapping straight back.
//
// Thread safety: internally synchronized; state() is cheap enough to call
// per batch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fxcpp::resilience {

enum class HealthState { Healthy, Degraded, Broken };
enum class ExecRung { PlannedBatched, PlannedSolo, Interpreter };

const char* health_state_name(HealthState s);
const char* exec_rung_name(ExecRung r);

struct HealthOptions {
  bool enabled = true;
  std::size_t window = 32;
  std::size_t min_samples = 6;
  double degrade_error_rate = 0.3;  // window rate -> at least Degraded
  double break_error_rate = 0.6;    // window rate -> Broken
  int recover_successes = 8;  // consecutive successes to step one level up
};

struct HealthStats {
  HealthState state = HealthState::Healthy;
  std::uint64_t samples = 0;
  std::uint64_t failures = 0;  // cumulative failed samples (incl. anomalies)
  std::uint64_t degrades = 0;  // any step down (Healthy->Degraded, ->Broken)
  std::uint64_t recoveries = 0;  // any step up
  std::string to_json() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions opts = {});

  // One engine-run outcome. Anomalies (NaN/Inf findings) arrive as ok=false
  // via the session, so the machine sees them as failures.
  void record(bool ok);
  // A breaker trip forces at least Degraded immediately (don't wait for
  // the window to catch up — the breaker already proved the engine sick).
  void on_breaker_trip();

  HealthState state() const;
  // The execution rung the current state maps to (see the header comment).
  ExecRung rung() const;
  HealthStats stats() const;
  void reset();

 private:
  void step_down_locked(HealthState to);

  HealthOptions opts_;
  mutable std::mutex mu_;
  HealthState state_ = HealthState::Healthy;
  std::vector<std::uint8_t> ring_;
  std::size_t ring_pos_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t ring_failures_ = 0;
  int success_streak_ = 0;
  HealthStats stats_;
};

}  // namespace fxcpp::resilience
