// FaultInjector — deterministic fault injection riding the ExecHooks seam.
//
// TorchProbe-style systematic fuzzing (PAPERS.md) needs a way to make any
// node fail, in any engine, on demand. Because all three engines
// (Interpreter, compiled tape, ParallelExecutor) drive the same hook seam,
// one injector covers them all without engine-specific patching, and the
// differential fuzz can assert that a fault at node N surfaces as the same
// ExecError code at the same node everywhere.
//
// Targets are matched by Node identity (pointer), not by index: the
// Interpreter iterates nodes while the tape engines iterate instructions
// (placeholders are register fills there), so indices don't line up across
// engines but the Node* does. Placeholder/output nodes produce hook events
// only in the Interpreter — target compute nodes for cross-engine parity.
//
// Thread safety: all state is atomic or thread-local; the ParallelExecutor
// calls hooks concurrently from workers.
#pragma once

#include <atomic>

#include "core/exec_hooks.h"

namespace fxcpp::resilience {

enum class FaultKind {
  Throw,       // on_node_begin throws -> ExecError{NodeFailure} at the node
  PoisonNaN,   // on_node_output replaces the result with a NaN-poisoned copy
  PoisonInf,   // same, with +inf
  AllocLimit,  // arm a thread-local allocation ceiling for the node's
               // duration -> ExecError{AllocLimit} if the node allocates
};

const char* fault_kind_name(FaultKind k);

namespace detail {
// Thread-local ownership ledger for injected allocation ceilings. The
// Storage ceiling is single-shot and disarms itself when it trips, but a
// ceiling that was armed and never *tripped* (the target node threw for a
// different reason before allocating, or adopted arena memory) would stay
// armed on the thread and fire at an arbitrary allocation in the NEXT run —
// poisoning run_resilient's next rung or a batched run's degrade path with
// a spurious AllocLimit at the wrong node. Injectors therefore record
// themselves as the ceiling's owner when arming, and every run/node
// boundary outside the target disarms any ceiling this owner leaked, so an
// injected ceiling's state is scoped to exactly one attempt.
void arm_injected_ceiling(const void* owner);
void disarm_injected_ceiling(const void* owner);
bool ceiling_owned_by(const void* owner);
}  // namespace detail

class FaultInjector : public fx::ExecHooks {
 public:
  // Inject `kind` whenever `target` executes. `max_fires` bounds the number
  // of injections (-1 = unlimited): max_fires=1 makes the fault engine-local
  // so run_resilient's next rung recovers; unlimited makes every engine see
  // it, which is what the differential fuzz compares. The target node must
  // outlive the injector's use.
  FaultInjector(const fx::Node* target, FaultKind kind, int max_fires = -1);

  // Times the fault actually fired (throws thrown / outputs poisoned /
  // ceilings armed) since construction or reset().
  int fires() const { return fires_.load(std::memory_order_relaxed); }
  void reset(int max_fires = -1);

  // Run boundaries re-arm injector-owned thread state: an allocation
  // ceiling leaked by an aborted previous attempt (rung retry, batched-run
  // degrade) is disarmed here, so each attempt starts from a clean slate.
  void on_run_begin(std::size_t num_nodes) override;
  void on_run_end() override;
  void on_node_begin(const fx::Node& n) override;
  void on_node_output(const fx::Node& n, fx::RtValue& out) override;
  void on_node_end(const fx::Node& n, const fx::RtValue& out) override;

 private:
  bool take_fire();

  const fx::Node* target_;
  FaultKind kind_;
  std::atomic<int> remaining_;
  std::atomic<int> fires_{0};
};

}  // namespace fxcpp::resilience
