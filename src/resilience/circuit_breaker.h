// CircuitBreaker — fail-fast guard in front of an execution engine.
//
// A serving session that keeps feeding requests into a broken engine turns
// one fault into a latency storm: every request burns a full retry ladder
// before failing, the queue grows, and tail latency poisons even the
// requests that would have succeeded. The breaker is the standard managed
// response (cf. onnxruntime hosting's session error paths): count failures,
// and when the engine is evidently broken stop calling it — answer
// ErrorCode::CircuitOpen immediately — until a controlled probe shows it
// recovered.
//
//   Closed ──(consecutive failures >= threshold, or window error rate
//             >= threshold over >= min_samples)──> Open
//   Open ──(cooldown_rejections fast-fails, + seeded jitter)──> HalfOpen
//   HalfOpen ──(probes_to_close probe successes)──> Closed
//   HalfOpen ──(any probe failure)──> Open   (a "reopen")
//
// Determinism: everything is counter-driven — no wall clock. The Open
// cooldown is a *rejection count*, not a duration, so a test (or the chaos
// bench) that feeds a fixed outcome sequence sees the exact same state
// trajectory every run; the per-trip cooldown jitter (which stops repeated
// trips from synchronizing across sessions) comes from an Rng seeded at
// construction, so it too replays identically for a given seed.
//
// Thread safety: all entry points are internally synchronized; the serving
// batcher, its retry loop, and stats() readers may call concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/exec_error.h"
#include "runtime/rng.h"

namespace fxcpp::resilience {

enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s);

// What the breaker tells a caller about to do work.
enum class BreakerDecision {
  Admit,  // Closed: run normally
  Probe,  // HalfOpen: run, and report the outcome with probe=true
  Reject, // Open (or HalfOpen with all probes outstanding): fail fast
};

struct BreakerOptions {
  bool enabled = true;
  // Trip on this many consecutive failures (engine runs, not requests).
  int consecutive_failures = 5;
  // ...or on this error rate over the sliding window, once it holds at
  // least min_samples outcomes.
  double error_rate = 0.6;
  std::size_t window = 32;
  std::size_t min_samples = 8;
  // Open -> HalfOpen after this many fast-fails, plus a deterministic
  // seeded jitter in [0, cooldown_jitter] drawn per trip.
  int cooldown_rejections = 16;
  int cooldown_jitter = 4;
  // HalfOpen: how many probes may run concurrently, and how many must
  // succeed (without any failing) to close the breaker.
  int half_open_probes = 2;
  int probes_to_close = 2;
  std::uint64_t seed = 0x5EEDull;
};

struct BreakerStats {
  BreakerState state = BreakerState::Closed;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // fast-fails while Open / probe-saturated
  std::uint64_t probes = 0;    // probe decisions issued
  std::uint64_t trips = 0;     // Closed -> Open transitions
  std::uint64_t reopens = 0;   // HalfOpen -> Open (a probe failed)
  std::uint64_t closes = 0;    // HalfOpen -> Closed (probes succeeded)
  std::string to_json() const;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = {});

  // Ask before running the engine. Reject means the caller must answer
  // ErrorCode::CircuitOpen without executing. A Probe (and an Admit) must
  // eventually be matched by exactly one on_outcome() call.
  BreakerDecision on_request();

  // Report the result of an admitted/probed engine run. `probe` must echo
  // the decision that authorized the run. Only genuine engine outcomes
  // belong here — a request answered by a deadline/cancel sweep while its
  // run kept computing is not an engine failure.
  void on_outcome(bool ok, bool probe);

  BreakerState state() const;
  BreakerStats stats() const;
  const BreakerOptions& options() const { return opts_; }
  // Back to Closed with empty window (new session epoch); counters keep.
  void reset();

 private:
  void trip_locked();   // -> Open, draws the seeded cooldown
  void close_locked();  // -> Closed, clears the window

  BreakerOptions opts_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  rt::Rng rng_;  // cooldown jitter; seeded => deterministic per instance

  // Sliding outcome window (ring buffer) + consecutive-failure streak.
  std::vector<std::uint8_t> ring_;  // 1 = failure
  std::size_t ring_pos_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t ring_failures_ = 0;
  int consecutive_failures_ = 0;

  int open_rejections_left_ = 0;  // countdown to HalfOpen
  int probes_outstanding_ = 0;
  int probe_successes_ = 0;

  BreakerStats stats_;
};

}  // namespace fxcpp::resilience
