// Input guards — entry-point validation for GraphModules, generated from
// traced shape/dtype meta (the paper's ShapeProp annotations, Section 6.3).
//
// Tracing specializes a graph to the example inputs' shapes; serving that
// graph other shapes is the classic silent-wrongness source. A GuardSpec per
// placeholder turns the specialization into an explicit, checkable contract:
// strict mode rejects violating inputs with an ExecError naming the
// offending placeholder, permissive mode accepts the new shapes by re-running
// ShapeProp and regenerating the guards (torchdynamo-style guard refresh,
// minus recompilation — fxcpp kernels are shape-polymorphic).
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::resilience {

enum class GuardMode {
  Strict,      // violation -> ExecError{GuardViolation}
  Permissive,  // violation -> re-run ShapeProp, regenerate guards, accept
};

// Build a GuardSpec for every placeholder carrying shape+dtype meta and
// install them on the module (replacing any previous guards). Placeholders
// without meta get no spec — run passes::shape_prop first for full coverage;
// the verifier rule `guards.coverage` flags partial or stale coverage.
// Returns the number of specs installed.
std::size_t generate_guards(fx::GraphModule& gm);

// Validate `inputs` against the module's guards. Strict mode delegates to
// fx::check_guards_strict and throws on violation. Permissive mode catches
// a guard violation, re-propagates shapes from the offending inputs
// (requires all-tensor inputs), regenerates the guards, and returns true
// ("guards were refreshed"). Arity mismatches always throw — there is no
// sensible refresh for a wrong input count. Returns false when the inputs
// passed as-is.
bool check_inputs(fx::GraphModule& gm, const std::vector<fx::RtValue>& inputs,
                  GuardMode mode = GuardMode::Strict);

}  // namespace fxcpp::resilience
