// Tracer — configurable symbolic tracing (Sections 4.1 and 5.2).
//
// Runs a Module's forward with Proxy inputs and records the operations that
// flow through the functional layer and module-call interception into a
// Graph. Customization points mirror the paper's: is_leaf_module() decides
// which modules stay opaque call_module Nodes, and create_proxy()/
// create_node() let subclasses attach metadata or alter recording.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "core/module.h"
#include "core/value.h"

namespace fxcpp::fx {

class GraphModule;

class Tracer {
 public:
  Tracer() = default;
  virtual ~Tracer() = default;

  // Symbolically trace `root`, producing a GraphModule that shares root's
  // parameter/module hierarchy. One placeholder per input name.
  std::shared_ptr<GraphModule> trace(
      nn::Module::Ptr root, const std::vector<std::string>& input_names = {"x"});

  // Trace a free function of Values (Figure 1's my_func case). The resulting
  // GraphModule has an empty module hierarchy.
  std::shared_ptr<GraphModule> trace_function(
      const std::function<Value(const std::vector<Value>&)>& fn,
      const std::vector<std::string>& input_names = {"x"});

  // --- customization points (Section 5.2) --------------------------------
  // Default: builtin framework modules (Conv2d, Linear, ...) are leaves;
  // user-defined containers are traced through; GraphModules are inlined.
  virtual bool is_leaf_module(const nn::Module& m,
                              const std::string& qualname) const;

  // Create a Node at the end of the graph. Subclasses may decorate.
  virtual Node* create_node(Opcode op, const std::string& target,
                            std::vector<Argument> args, Kwargs kwargs,
                            const std::string& name_hint = "");

  // Create a Node and wrap it in a Proxy carrying this tracer.
  virtual Proxy create_proxy(Opcode op, const std::string& target,
                             std::vector<Argument> args, Kwargs kwargs = {},
                             const std::string& name_hint = "");

  // Lower a traced Value to an IR Argument: Proxy -> its Node; concrete
  // Tensor -> a get_attr to a freshly registered constant; tuple -> list.
  Argument create_arg(const Value& v);

  Graph& graph() { return *graph_; }

  // --- hooks used by Module::operator() / param_value --------------------
  // Is `m` part of the hierarchy being traced?
  bool is_tracing_module(const nn::Module& m) const;
  // Record or trace through a call to `m` (which must be in the hierarchy).
  Value module_call(nn::Module& m, const std::vector<Value>& inputs);
  // get_attr for `m.attr_name` (parameter access in a traced forward).
  Value attr_value(const nn::Module& m, const std::string& attr_name);

  // The innermost active tracer on this thread, or nullptr.
  static Tracer* active();

  // RAII activation: while alive, Module::operator() and param_value()
  // route through this tracer. trace()/trace_function() use it internally;
  // Transformer holds one for the duration of a rewrite.
  class Scope {
   public:
    explicit Scope(Tracer& t);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  // --- builder mode (used by Transformer) ---------------------------------
  // Start recording into a fresh Graph against `root`'s hierarchy without
  // running any forward. Create nodes with create_proxy()/create_node(),
  // then take the result with finish_graph().
  void start(nn::Module::Ptr root);
  std::unique_ptr<Graph> finish_graph();

 protected:
  const std::string& qualname_of(const nn::Module& m) const;

 private:
  std::shared_ptr<GraphModule> finish(nn::Module::Ptr root,
                                      const std::string& name);
  void register_hierarchy(const nn::Module::Ptr& m, const std::string& prefix);

  std::unique_ptr<Graph> graph_;
  std::unordered_map<const nn::Module*, std::string> paths_;
  int next_const_ = 0;
  nn::Module::Ptr root_;
};

// Convenience wrappers matching fx.symbolic_trace.
std::shared_ptr<GraphModule> symbolic_trace(
    nn::Module::Ptr root, const std::vector<std::string>& input_names = {"x"});
std::shared_ptr<GraphModule> symbolic_trace(
    const std::function<Value(const std::vector<Value>&)>& fn,
    const std::vector<std::string>& input_names = {"x"});
// One-argument function convenience (Figure 1).
std::shared_ptr<GraphModule> symbolic_trace(
    const std::function<Value(Value)>& fn, const std::string& input_name = "x");

}  // namespace fxcpp::fx
