// ExecHooks — the per-node begin/end instrumentation seam shared by all
// three execution engines (Interpreter::run, the compiled tape's
// CompiledGraph::run, and the inter-op ParallelExecutor).
//
// The paper's flagship Interpreter use case (Section 6.3) is a drop-in
// profiler that attributes wall time to individual graph nodes; in this
// reproduction the same seam also instruments the two loaded execution
// paths, so one observer covers every engine. profile::Profiler is the
// canonical implementation; future schedulers / lowering passes attach
// their own observers here instead of patching each engine.
//
// Contract:
//   * on_run_begin / on_run_end bracket one full graph execution.
//   * on_node_begin / on_node_end bracket one node (Interpreter) or one
//     tape instruction (serial tape, ParallelExecutor — placeholders are
//     register fills there, not instructions, so they produce no events).
//   * `out` in on_node_end is the node's result, observed before it is
//     moved into the environment/register file. Hooks must not mutate it.
//   * on_node_output is the one *mutation* point: it fires after the node
//     computes and before on_node_end / before the value enters the
//     environment, and the hook may replace `out` (the resilience
//     FaultInjector uses this for NaN/Inf poisoning). The default is a
//     no-op, so plain observers keep the bit-identical guarantee.
//   * ParallelExecutor invokes node hooks concurrently from its worker
//     threads; implementations must be thread-safe. Observing hooks leave
//     engines bit-identical with or without them.
//   * A node that throws produces no on_node_output/on_node_end, but
//     on_run_end still fires before the exception propagates out of the
//     engine, so run-level bookkeeping always closes. A hook that throws
//     from on_node_begin/on_node_output/on_node_end is treated as that
//     node failing (the engines wrap it with the node's provenance).
#pragma once

#include <cstddef>
#include <vector>

#include "core/node.h"
#include "core/rt_value.h"

namespace fxcpp::fx {

class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  virtual void on_run_begin(std::size_t num_nodes) { (void)num_nodes; }
  virtual void on_node_begin(const Node& n) { (void)n; }
  // May mutate `out` in place (fault injection); fires before on_node_end.
  virtual void on_node_output(const Node& n, RtValue& out) {
    (void)n;
    (void)out;
  }
  virtual void on_node_end(const Node& n, const RtValue& out) {
    (void)n;
    (void)out;
  }
  virtual void on_run_end() {}
};

// Fans every event out to a list of hooks in order, so a fault injector and
// an anomaly detector (or a profiler) can observe the same run. Does not own
// the hooks; callers keep them alive for the run. Null entries are skipped.
class MultiHooks : public ExecHooks {
 public:
  MultiHooks() = default;
  explicit MultiHooks(std::vector<ExecHooks*> hooks)
      : hooks_(std::move(hooks)) {}

  void add(ExecHooks* h) { hooks_.push_back(h); }

  void on_run_begin(std::size_t num_nodes) override {
    for (auto* h : hooks_)
      if (h) h->on_run_begin(num_nodes);
  }
  void on_node_begin(const Node& n) override {
    for (auto* h : hooks_)
      if (h) h->on_node_begin(n);
  }
  void on_node_output(const Node& n, RtValue& out) override {
    for (auto* h : hooks_)
      if (h) h->on_node_output(n, out);
  }
  void on_node_end(const Node& n, const RtValue& out) override {
    for (auto* h : hooks_)
      if (h) h->on_node_end(n, out);
  }
  void on_run_end() override {
    for (auto* h : hooks_)
      if (h) h->on_run_end();
  }

 private:
  std::vector<ExecHooks*> hooks_;
};

}  // namespace fxcpp::fx
