// ExecHooks — the per-node begin/end instrumentation seam shared by all
// three execution engines (Interpreter::run, the compiled tape's
// CompiledGraph::run, and the inter-op ParallelExecutor).
//
// The paper's flagship Interpreter use case (Section 6.3) is a drop-in
// profiler that attributes wall time to individual graph nodes; in this
// reproduction the same seam also instruments the two loaded execution
// paths, so one observer covers every engine. profile::Profiler is the
// canonical implementation; future schedulers / lowering passes attach
// their own observers here instead of patching each engine.
//
// Contract:
//   * on_run_begin / on_run_end bracket one full graph execution.
//   * on_node_begin / on_node_end bracket one node (Interpreter) or one
//     tape instruction (serial tape, ParallelExecutor — placeholders are
//     register fills there, not instructions, so they produce no events).
//   * `out` in on_node_end is the node's result, observed before it is
//     moved into the environment/register file. Hooks must not mutate it.
//   * ParallelExecutor invokes node hooks concurrently from its worker
//     threads; implementations must be thread-safe. Hooks only observe —
//     engines produce bit-identical outputs with or without them.
//   * A node that throws produces no on_node_end, but on_run_end still
//     fires before the exception propagates out of the engine, so run-level
//     bookkeeping always closes.
#pragma once

#include <cstddef>

#include "core/node.h"
#include "core/rt_value.h"

namespace fxcpp::fx {

class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  virtual void on_run_begin(std::size_t num_nodes) { (void)num_nodes; }
  virtual void on_node_begin(const Node& n) { (void)n; }
  virtual void on_node_end(const Node& n, const RtValue& out) {
    (void)n;
    (void)out;
  }
  virtual void on_run_end() {}
};

}  // namespace fxcpp::fx
