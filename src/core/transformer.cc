#include "core/transformer.h"

namespace fxcpp::fx {

Value Transformer::value_of(const Node* src) const {
  auto it = env_.find(src);
  if (it == env_.end()) {
    throw std::logic_error("Transformer: '" + src->name() +
                           "' referenced before definition");
  }
  return it->second;
}

Argument Transformer::remap(const Argument& a) const {
  if (a.is_node()) {
    const Value v = value_of(a.node());
    if (!v.is_proxy()) {
      throw std::logic_error("Transformer: non-proxy replacement for '" +
                             a.node()->name() + "' used as argument");
    }
    return Argument(v.proxy().node);
  }
  if (a.is_list()) {
    Argument::List items;
    items.reserve(a.list().size());
    for (const auto& item : a.list()) items.push_back(remap(item));
    return Argument(std::move(items));
  }
  return a;
}

Value Transformer::emit_same(const Node& n) {
  std::vector<Argument> args;
  args.reserve(n.args().size());
  for (const auto& a : n.args()) args.push_back(remap(a));
  Kwargs kwargs;
  for (const auto& [k, v] : n.kwargs()) kwargs.emplace_back(k, remap(v));
  Value v = Value(tracer_.create_proxy(n.op(), n.target(), std::move(args),
                                       std::move(kwargs), n.name()));
  // A faithful re-emission computes the same value, so its annotations stay
  // valid; rewritten regions (subclass overrides that emit different ops)
  // get fresh nodes with no meta, never stale meta.
  if (v.is_proxy()) {
    for (const auto& [key, mv] : n.all_meta()) v.proxy().node->set_meta(key, mv);
  }
  return v;
}

Value Transformer::placeholder(const Node& n) { return emit_same(n); }
Value Transformer::get_attr(const Node& n) { return emit_same(n); }
Value Transformer::call_function(const Node& n) { return emit_same(n); }
Value Transformer::call_method(const Node& n) { return emit_same(n); }
Value Transformer::call_module(const Node& n) { return emit_same(n); }

std::shared_ptr<GraphModule> Transformer::transform() {
  tracer_.start(gm_.root());
  env_.clear();
  Tracer::Scope scope(tracer_);
  Argument out;
  for (const Node* n : gm_.graph().nodes()) {
    switch (n->op()) {
      case Opcode::Placeholder:
        env_[n] = placeholder(*n);
        break;
      case Opcode::GetAttr:
        env_[n] = get_attr(*n);
        break;
      case Opcode::CallFunction:
        env_[n] = call_function(*n);
        break;
      case Opcode::CallMethod:
        env_[n] = call_method(*n);
        break;
      case Opcode::CallModule:
        env_[n] = call_module(*n);
        break;
      case Opcode::Output:
        out = remap(n->args().at(0));
        break;
    }
  }
  auto graph = tracer_.finish_graph();
  graph->output(out);
  graph->eliminate_dead_code();
  auto result = std::make_shared<GraphModule>(gm_.root(), std::move(graph),
                                              gm_.kind());
  result->recompile();
  return result;
}

}  // namespace fxcpp::fx
