#include "core/functional.h"

#include <mutex>

#include "core/node.h"
#include "core/op_registry.h"
#include "core/tracer.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"

namespace fxcpp::fx {

// ---------------------------------------------------------------------------
// Value accessors / methods (declared in value.h)
// ---------------------------------------------------------------------------

const Tensor& Value::tensor() const {
  if (is_tensor()) return std::get<Tensor>(v_);
  if (is_proxy()) {
    throw TraceError(
        "cannot materialize a concrete Tensor from Proxy '" +
        std::get<Proxy>(v_).node->name() +
        "' during symbolic tracing; this usually means the model performs an "
        "untraceable operation (e.g. data-dependent control flow) on a traced "
        "value");
  }
  throw std::logic_error("Value does not hold a Tensor");
}

Proxy Value::proxy() const {
  if (!is_proxy()) throw std::logic_error("Value does not hold a Proxy");
  return std::get<Proxy>(v_);
}

const std::vector<Value>& Value::tuple() const {
  if (!is_tuple()) throw std::logic_error("Value does not hold a tuple");
  return std::get<std::vector<Value>>(v_);
}

double Value::item() const {
  if (is_proxy()) {
    throw TraceError(
        "cannot convert Proxy '" + std::get<Proxy>(v_).node->name() +
        "' to a concrete Python value during symbolic tracing; control "
        "decisions on traced values are not supported (Section 5.3)");
  }
  return tensor().item();
}

namespace {

// Find the recording tracer among a set of values (nullptr = all concrete).
Tracer* tracer_of(std::initializer_list<const Value*> vs) {
  for (const Value* v : vs) {
    if (v->is_proxy()) return v->proxy().tracer;
    if (v->is_tuple()) {
      for (const auto& item : v->tuple()) {
        if (Tracer* t = tracer_of({&item})) return t;
      }
    }
  }
  return nullptr;
}

Value record_fn(Tracer* t, const std::string& target,
                std::vector<Argument> args) {
  return Value(t->create_proxy(Opcode::CallFunction, target, std::move(args)));
}

Value record_method(Tracer* t, const std::string& target,
                    std::vector<Argument> args) {
  return Value(t->create_proxy(Opcode::CallMethod, target, std::move(args)));
}

}  // namespace

Value Value::neg() const {
  if (Tracer* t = tracer_of({this})) {
    return record_method(t, "neg", {t->create_arg(*this)});
  }
  return Value(ops::neg(tensor()));
}

Value Value::relu() const {
  if (Tracer* t = tracer_of({this})) {
    return record_method(t, "relu", {t->create_arg(*this)});
  }
  return Value(ops::relu(tensor()));
}

Value Value::reshape(std::vector<std::int64_t> shape) const {
  if (Tracer* t = tracer_of({this})) {
    return record_method(t, "reshape",
                         {t->create_arg(*this), Argument(shape)});
  }
  return Value(tensor().reshape(Shape(shape.begin(), shape.end())));
}

Value Value::flatten(std::int64_t start_dim) const {
  if (Tracer* t = tracer_of({this})) {
    return record_method(t, "flatten",
                         {t->create_arg(*this), Argument(start_dim)});
  }
  return Value(tensor().flatten(static_cast<int>(start_dim)));
}

Value Value::dequantize() const {
  if (Tracer* t = tracer_of({this})) {
    return record_method(t, "dequantize", {t->create_arg(*this)});
  }
  return Value(ops::dequantize(tensor()));
}

Value operator+(const Value& a, const Value& b) { return fn::add(a, b); }
Value operator-(const Value& a, const Value& b) { return fn::sub(a, b); }
Value operator*(const Value& a, const Value& b) { return fn::mul(a, b); }
Value operator/(const Value& a, const Value& b) { return fn::div(a, b); }
Value operator+(const Value& a, double s) { return fn::add(a, s); }
Value operator-(const Value& a, double s) { return fn::sub(a, s); }
Value operator*(const Value& a, double s) { return fn::mul(a, s); }
Value operator/(const Value& a, double s) { return fn::div(a, s); }
Value Value::operator-() const { return fn::neg(*this); }

// ---------------------------------------------------------------------------
// Functional layer
// ---------------------------------------------------------------------------

namespace fn {

namespace {

// Binary tensor-or-scalar op: dispatch record/compute.
template <typename EagerTT, typename EagerTS>
Value binary(const char* target, const Value& a, const Value& b, EagerTT ett,
             EagerTS /*ets*/) {
  if (Tracer* t = tracer_of({&a, &b})) {
    return record_fn(t, target, {t->create_arg(a), t->create_arg(b)});
  }
  return Value(ett(a.tensor(), b.tensor()));
}

template <typename Eager>
Value binary_scalar(const char* target, const Value& a, double s, Eager e) {
  if (Tracer* t = tracer_of({&a})) {
    return record_fn(t, target, {t->create_arg(a), Argument(s)});
  }
  return Value(e(a.tensor(), s));
}

template <typename Eager>
Value unary(const char* target, const Value& x, Eager e) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, target, {t->create_arg(x)});
  }
  return Value(e(x.tensor()));
}

}  // namespace

#define FXCPP_BINARY(NAME)                                                   \
  Value NAME(const Value& a, const Value& b) {                               \
    return binary(#NAME, a, b,                                               \
                  [](const Tensor& x, const Tensor& y) {                     \
                    return ops::NAME(x, y);                                  \
                  },                                                         \
                  nullptr);                                                  \
  }                                                                          \
  Value NAME(const Value& a, double s) {                                     \
    return binary_scalar(#NAME, a, s, [](const Tensor& x, double v) {        \
      return ops::NAME(x, v);                                                \
    });                                                                      \
  }

FXCPP_BINARY(add)
FXCPP_BINARY(sub)
FXCPP_BINARY(mul)
FXCPP_BINARY(div)
#undef FXCPP_BINARY

Value neg(const Value& x) {
  return unary("neg", x, [](const Tensor& t) { return ops::neg(t); });
}
Value relu(const Value& x) {
  return unary("relu", x, [](const Tensor& t) { return ops::relu(t); });
}
Value gelu(const Value& x) {
  return unary("gelu", x, [](const Tensor& t) { return ops::gelu(t); });
}
Value sigmoid(const Value& x) {
  return unary("sigmoid", x, [](const Tensor& t) { return ops::sigmoid(t); });
}
Value tanh(const Value& x) {
  return unary("tanh", x, [](const Tensor& t) { return ops::tanh(t); });
}
Value selu(const Value& x) {
  return unary("selu", x, [](const Tensor& t) { return ops::selu(t); });
}
Value sqrt(const Value& x) {
  return unary("sqrt", x, [](const Tensor& t) { return ops::sqrt(t); });
}
Value exp(const Value& x) {
  return unary("exp", x, [](const Tensor& t) { return ops::exp(t); });
}
Value abs(const Value& x) {
  return unary("abs", x, [](const Tensor& t) { return ops::abs(t); });
}

Value dropout(const Value& x, double p, bool training) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "dropout",
                     {t->create_arg(x), Argument(p), Argument(training)});
  }
  return Value(ops::dropout(x.tensor(), p, training));
}

Value matmul(const Value& a, const Value& b) {
  if (Tracer* t = tracer_of({&a, &b})) {
    return record_fn(t, "matmul", {t->create_arg(a), t->create_arg(b)});
  }
  return Value(ops::matmul(a.tensor(), b.tensor()));
}

Value linear(const Value& x, const Value& w, const Value& b) {
  if (Tracer* t = tracer_of({&x, &w, &b})) {
    return record_fn(
        t, "linear", {t->create_arg(x), t->create_arg(w), t->create_arg(b)});
  }
  return Value(ops::linear(x.tensor(), w.tensor(),
                           b.defined() ? b.tensor() : Tensor()));
}

Value linear_relu(const Value& x, const Value& w, const Value& b) {
  if (Tracer* t = tracer_of({&x, &w, &b})) {
    return record_fn(t, "linear_relu",
                     {t->create_arg(x), t->create_arg(w), t->create_arg(b)});
  }
  return Value(ops::linear_relu(x.tensor(), w.tensor(),
                                b.defined() ? b.tensor() : Tensor()));
}

Value transpose(const Value& x, std::int64_t d0, std::int64_t d1) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "transpose",
                     {t->create_arg(x), Argument(d0), Argument(d1)});
  }
  return Value(ops::transpose(x.tensor(), static_cast<int>(d0),
                              static_cast<int>(d1)));
}

Value embedding(const Value& weight, const Value& indices) {
  if (Tracer* t = tracer_of({&weight, &indices})) {
    return record_fn(t, "embedding",
                     {t->create_arg(weight), t->create_arg(indices)});
  }
  return Value(ops::embedding(weight.tensor(), indices.tensor()));
}

Value conv2d(const Value& x, const Value& w, const Value& b,
             std::vector<std::int64_t> stride,
             std::vector<std::int64_t> padding) {
  if (Tracer* t = tracer_of({&x, &w, &b})) {
    return record_fn(t, "conv2d",
                     {t->create_arg(x), t->create_arg(w), t->create_arg(b),
                      Argument(stride), Argument(padding)});
  }
  return Value(ops::conv2d(x.tensor(), w.tensor(),
                           b.defined() ? b.tensor() : Tensor(), stride,
                           padding));
}

Value max_pool2d(const Value& x, std::vector<std::int64_t> kernel,
                 std::vector<std::int64_t> stride,
                 std::vector<std::int64_t> padding) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "max_pool2d",
                     {t->create_arg(x), Argument(kernel), Argument(stride),
                      Argument(padding)});
  }
  return Value(ops::max_pool2d(x.tensor(), kernel, stride, padding));
}

Value avg_pool2d(const Value& x, std::vector<std::int64_t> kernel,
                 std::vector<std::int64_t> stride) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "avg_pool2d",
                     {t->create_arg(x), Argument(kernel), Argument(stride)});
  }
  return Value(ops::avg_pool2d(x.tensor(), kernel, stride));
}

Value adaptive_avg_pool2d(const Value& x, std::vector<std::int64_t> out_hw) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "adaptive_avg_pool2d",
                     {t->create_arg(x), Argument(out_hw)});
  }
  return Value(ops::adaptive_avg_pool2d(x.tensor(), out_hw));
}

Value batch_norm(const Value& x, const Value& gamma, const Value& beta,
                 const Value& mean, const Value& var, double eps) {
  if (Tracer* t = tracer_of({&x, &gamma, &beta, &mean, &var})) {
    return record_fn(t, "batch_norm",
                     {t->create_arg(x), t->create_arg(gamma),
                      t->create_arg(beta), t->create_arg(mean),
                      t->create_arg(var), Argument(eps)});
  }
  return Value(ops::batch_norm(x.tensor(), gamma.tensor(), beta.tensor(),
                               mean.tensor(), var.tensor(), eps));
}

Value layer_norm(const Value& x, const Value& gamma, const Value& beta,
                 double eps) {
  if (Tracer* t = tracer_of({&x, &gamma, &beta})) {
    return record_fn(t, "layer_norm",
                     {t->create_arg(x), t->create_arg(gamma),
                      t->create_arg(beta), Argument(eps)});
  }
  return Value(ops::layer_norm(x.tensor(), gamma.tensor(), beta.tensor(), eps));
}

Value softmax(const Value& x, std::int64_t dim) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "softmax", {t->create_arg(x), Argument(dim)});
  }
  return Value(ops::softmax(x.tensor(), static_cast<int>(dim)));
}

Value reshape(const Value& x, std::vector<std::int64_t> shape) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "reshape", {t->create_arg(x), Argument(shape)});
  }
  return Value(x.tensor().reshape(Shape(shape.begin(), shape.end())));
}

Value flatten(const Value& x, std::int64_t start_dim) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "flatten", {t->create_arg(x), Argument(start_dim)});
  }
  return Value(x.tensor().flatten(static_cast<int>(start_dim)));
}

Value cat(const std::vector<Value>& xs, std::int64_t dim) {
  Tracer* t = nullptr;
  for (const auto& v : xs) {
    if ((t = tracer_of({&v})) != nullptr) break;
  }
  if (t) {
    Argument::List items;
    items.reserve(xs.size());
    for (const auto& v : xs) items.push_back(t->create_arg(v));
    return record_fn(t, "cat", {Argument(std::move(items)), Argument(dim)});
  }
  std::vector<Tensor> ts;
  ts.reserve(xs.size());
  for (const auto& v : xs) ts.push_back(v.tensor());
  return Value(ops::cat(ts, static_cast<int>(dim)));
}

Value sum(const Value& x) {
  return unary("sum", x, [](const Tensor& t) { return ops::sum(t); });
}
Value mean(const Value& x) {
  return unary("mean", x, [](const Tensor& t) { return ops::mean(t); });
}

Value getitem(const Value& tuple, std::int64_t index) {
  if (Tracer* t = tracer_of({&tuple})) {
    return record_fn(t, "getitem", {t->create_arg(tuple), Argument(index)});
  }
  return tuple.tuple().at(static_cast<std::size_t>(index));
}

Value quantize_per_tensor(const Value& x, double scale,
                          std::int64_t zero_point) {
  if (Tracer* t = tracer_of({&x})) {
    return record_fn(t, "quantize_per_tensor",
                     {t->create_arg(x), Argument(scale), Argument(zero_point)});
  }
  return Value(ops::quantize_per_tensor(x.tensor(), scale,
                                        static_cast<std::int32_t>(zero_point)));
}

Value dequantize(const Value& x) {
  return unary("dequantize", x,
               [](const Tensor& t) { return ops::dequantize(t); });
}

Value quantized_relu(const Value& x) {
  return unary("quantized_relu", x,
               [](const Tensor& t) { return ops::quantized_relu(t); });
}

Value quantized_add(const Value& a, const Value& b, double out_scale,
                    std::int64_t out_zp) {
  if (Tracer* t = tracer_of({&a, &b})) {
    return record_fn(t, "quantized_add",
                     {t->create_arg(a), t->create_arg(b), Argument(out_scale),
                      Argument(out_zp)});
  }
  return Value(ops::quantized_add(a.tensor(), b.tensor(), out_scale,
                                  static_cast<std::int32_t>(out_zp)));
}

// ---------------------------------------------------------------------------
// Registry population
// ---------------------------------------------------------------------------

namespace {

void do_register() {
  auto& fns = OpRegistry::functions();
  auto& methods = OpRegistry::methods();
  using Args = std::vector<RtValue>;

  auto bin = [&](const char* name, Tensor (*tt)(const Tensor&, const Tensor&),
                 Tensor (*ts)(const Tensor&, double)) {
    fns.add({name, {"a", "b"}, [tt, ts](const Args& a) -> RtValue {
               if (rt_is_tensor(a.at(1))) {
                 return tt(rt_tensor(a[0]), rt_tensor(a[1]));
               }
               return ts(rt_tensor(a[0]), rt_double(a[1]));
             }});
  };
  bin("add", &ops::add, &ops::add);
  bin("sub", &ops::sub, &ops::sub);
  bin("mul", &ops::mul, &ops::mul);
  bin("div", &ops::div, &ops::div);

  auto un = [&](const char* name, Tensor (*f)(const Tensor&)) {
    fns.add({name, {"x"}, [f](const Args& a) -> RtValue {
               return f(rt_tensor(a.at(0)));
             }});
  };
  un("neg", &ops::neg);
  un("relu", &ops::relu);
  un("gelu", &ops::gelu);
  un("sigmoid", &ops::sigmoid);
  un("tanh", &ops::tanh);
  un("selu", &ops::selu);
  un("sqrt", &ops::sqrt);
  un("exp", &ops::exp);
  un("abs", &ops::abs);
  un("sum", &ops::sum);
  un("mean", &ops::mean);
  un("dequantize", &ops::dequantize);
  un("quantized_relu", &ops::quantized_relu);

  fns.add({"dropout", {"x", "p", "training"}, [](const Args& a) -> RtValue {
             return ops::dropout(rt_tensor(a.at(0)), rt_double(a.at(1)),
                                 rt_bool(a.at(2)));
           }});
  fns.add({"matmul", {"a", "b"}, [](const Args& a) -> RtValue {
             return ops::matmul(rt_tensor(a.at(0)), rt_tensor(a.at(1)));
           }});
  fns.add({"linear", {"x", "weight", "bias"}, [](const Args& a) -> RtValue {
             return ops::linear(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                rt_opt_tensor(a.at(2)));
           }});
  fns.add({"linear_relu", {"x", "weight", "bias"}, [](const Args& a) -> RtValue {
             return ops::linear_relu(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                     rt_opt_tensor(a.at(2)));
           }});
  fns.add({"transpose", {"x", "dim0", "dim1"}, [](const Args& a) -> RtValue {
             return ops::transpose(rt_tensor(a.at(0)),
                                   static_cast<int>(rt_int(a.at(1))),
                                   static_cast<int>(rt_int(a.at(2))));
           }});
  fns.add({"embedding", {"weight", "indices"}, [](const Args& a) -> RtValue {
             return ops::embedding(rt_tensor(a.at(0)), rt_tensor(a.at(1)));
           }});
  fns.add({"conv2d",
           {"x", "weight", "bias", "stride", "padding"},
           [](const Args& a) -> RtValue {
             return ops::conv2d(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                rt_opt_tensor(a.at(2)), rt_int_list(a.at(3)),
                                rt_int_list(a.at(4)));
           }});
  fns.add({"max_pool2d",
           {"x", "kernel", "stride", "padding"},
           [](const Args& a) -> RtValue {
             return ops::max_pool2d(rt_tensor(a.at(0)), rt_int_list(a.at(1)),
                                    rt_int_list(a.at(2)), rt_int_list(a.at(3)));
           }});
  fns.add({"avg_pool2d", {"x", "kernel", "stride"}, [](const Args& a) -> RtValue {
             return ops::avg_pool2d(rt_tensor(a.at(0)), rt_int_list(a.at(1)),
                                    rt_int_list(a.at(2)));
           }});
  fns.add({"adaptive_avg_pool2d", {"x", "output_size"},
           [](const Args& a) -> RtValue {
             return ops::adaptive_avg_pool2d(rt_tensor(a.at(0)),
                                             rt_int_list(a.at(1)));
           }});
  fns.add({"batch_norm",
           {"x", "weight", "bias", "running_mean", "running_var", "eps"},
           [](const Args& a) -> RtValue {
             return ops::batch_norm(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                    rt_tensor(a.at(2)), rt_tensor(a.at(3)),
                                    rt_tensor(a.at(4)), rt_double(a.at(5)));
           }});
  fns.add({"layer_norm", {"x", "weight", "bias", "eps"},
           [](const Args& a) -> RtValue {
             return ops::layer_norm(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                    rt_tensor(a.at(2)), rt_double(a.at(3)));
           }});
  fns.add({"softmax", {"x", "dim"}, [](const Args& a) -> RtValue {
             return ops::softmax(rt_tensor(a.at(0)),
                                 static_cast<int>(rt_int(a.at(1))));
           }});
  fns.add({"reshape", {"x", "shape"}, [](const Args& a) -> RtValue {
             const auto s = rt_int_list(a.at(1));
             return rt_tensor(a.at(0)).reshape(Shape(s.begin(), s.end()));
           }});
  fns.add({"flatten", {"x", "start_dim"}, [](const Args& a) -> RtValue {
             return rt_tensor(a.at(0)).flatten(
                 static_cast<int>(rt_int(a.at(1))));
           }});
  fns.add({"cat", {"tensors", "dim"}, [](const Args& a) -> RtValue {
             return ops::cat(std::get<std::vector<Tensor>>(a.at(0)),
                             static_cast<int>(rt_int(a.at(1))));
           }});
  fns.add({"getitem", {"tuple", "index"}, [](const Args& a) -> RtValue {
             const auto& ts = std::get<std::vector<Tensor>>(a.at(0));
             return ts.at(static_cast<std::size_t>(rt_int(a.at(1))));
           }});
  fns.add({"quantize_per_tensor", {"x", "scale", "zero_point"},
           [](const Args& a) -> RtValue {
             return ops::quantize_per_tensor(
                 rt_tensor(a.at(0)), rt_double(a.at(1)),
                 static_cast<std::int32_t>(rt_int(a.at(2))));
           }});
  fns.add({"quantized_add", {"a", "b", "scale", "zero_point"},
           [](const Args& a) -> RtValue {
             return ops::quantized_add(rt_tensor(a.at(0)), rt_tensor(a.at(1)),
                                       rt_double(a.at(2)),
                                       static_cast<std::int32_t>(rt_int(a.at(3))));
           }});

  // call_method targets (self is args[0]).
  methods.add({"neg", {"self"}, [](const Args& a) -> RtValue {
                 return ops::neg(rt_tensor(a.at(0)));
               }});
  methods.add({"relu", {"self"}, [](const Args& a) -> RtValue {
                 return ops::relu(rt_tensor(a.at(0)));
               }});
  methods.add({"reshape", {"self", "shape"}, [](const Args& a) -> RtValue {
                 const auto s = rt_int_list(a.at(1));
                 return rt_tensor(a.at(0)).reshape(Shape(s.begin(), s.end()));
               }});
  methods.add({"flatten", {"self", "start_dim"}, [](const Args& a) -> RtValue {
                 return rt_tensor(a.at(0)).flatten(
                     static_cast<int>(rt_int(a.at(1))));
               }});
  methods.add({"dequantize", {"self"}, [](const Args& a) -> RtValue {
                 return ops::dequantize(rt_tensor(a.at(0)));
               }});
  methods.add({"contiguous", {"self"}, [](const Args& a) -> RtValue {
                 return rt_tensor(a.at(0)).contiguous();
               }});

  // --- memory-planner traits -------------------------------------------
  // fresh_output: the kernel always materializes a new tensor (safe to
  // serve from a planned arena slot). can_alias additionally promises an
  // index-aligned elementwise map on the equal-shape path, so a dead
  // same-shaped input may share the output's slot. View-producing targets
  // (reshape/flatten/getitem/contiguous) keep both false: their result may
  // share storage with an input.
  for (const char* name : {"add", "sub", "mul", "div", "neg", "relu", "gelu",
                           "sigmoid", "tanh", "selu", "sqrt", "exp", "abs"}) {
    fns.annotate(name, /*fresh_output=*/true, /*can_alias=*/true);
  }
  for (const char* name :
       {"sum", "mean", "dequantize", "quantized_relu", "dropout", "matmul",
        "linear", "linear_relu", "transpose", "embedding", "conv2d",
        "max_pool2d",
        "avg_pool2d", "adaptive_avg_pool2d", "batch_norm", "layer_norm",
        "softmax", "cat", "quantize_per_tensor", "quantized_add"}) {
    fns.annotate(name, /*fresh_output=*/true, /*can_alias=*/false);
  }
  methods.annotate("neg", /*fresh_output=*/true, /*can_alias=*/true);
  methods.annotate("relu", /*fresh_output=*/true, /*can_alias=*/true);
  methods.annotate("dequantize", /*fresh_output=*/true, /*can_alias=*/false);

  // --- analysis traits -------------------------------------------------
  // dropout draws from the RNG in training mode: not a pure expression, so
  // the constness analysis (and CSE / constant folding) must not merge or
  // precompute it. Everything else registered above is deterministic.
  fns.annotate_pure("dropout", false);
}

}  // namespace

void ensure_registered() {
  static std::once_flag flag;
  std::call_once(flag, do_register);
}

namespace {
// Populate the registries at load time so Interpreters built before any
// functional call still resolve targets.
const bool g_registered = [] {
  ensure_registered();
  return true;
}();
}  // namespace

}  // namespace fn
}  // namespace fxcpp::fx
