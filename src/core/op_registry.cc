#include "core/op_registry.h"

#include <stdexcept>

namespace fxcpp::fx {

OpRegistry& OpRegistry::functions() {
  static OpRegistry r;
  return r;
}

OpRegistry& OpRegistry::methods() {
  static OpRegistry r;
  return r;
}

void OpRegistry::add(OpInfo info) { ops_[info.name] = std::move(info); }

void OpRegistry::annotate(const std::string& name, bool fresh_output,
                          bool can_alias) {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    throw std::out_of_range("annotate: no registered operator target '" +
                            name + "'");
  }
  it->second.fresh_output = fresh_output;
  it->second.can_alias = can_alias;
}

void OpRegistry::annotate_pure(const std::string& name, bool pure) {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    throw std::out_of_range("annotate_pure: no registered operator target '" +
                            name + "'");
  }
  it->second.pure = pure;
}

const OpInfo* OpRegistry::find(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

const OpInfo& OpRegistry::at(const std::string& name) const {
  const OpInfo* info = find(name);
  if (!info) {
    throw std::out_of_range("no registered operator target '" + name + "'");
  }
  return *info;
}

std::vector<RtValue> merge_kwargs(
    const OpInfo& info, std::vector<RtValue> args,
    const std::vector<std::pair<std::string, RtValue>>& kwargs) {
  if (kwargs.empty()) return args;
  std::vector<RtValue> out(info.param_names.size());
  if (args.size() > out.size()) out.resize(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) out[i] = std::move(args[i]);
  for (const auto& [key, v] : kwargs) {
    bool placed = false;
    for (std::size_t i = 0; i < info.param_names.size(); ++i) {
      if (info.param_names[i] == key) {
        out[i] = v;
        placed = true;
        break;
      }
    }
    if (!placed) {
      throw std::invalid_argument("operator '" + info.name +
                                  "' has no parameter named '" + key + "'");
    }
  }
  return out;
}

}  // namespace fxcpp::fx
