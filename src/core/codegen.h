// Python-like source generation from the IR (Section 4.3) — renders exactly
// the Figure 1-3 style:
//
//   def forward(self, x):
//       relu = torch.relu(x);  x = None
//       neg = relu.neg();  relu = None
//       return neg
//
// The `; v = None` annotations come from a real liveness analysis (each
// variable is cleared after its last use); the compiled tape reuses the same
// analysis to free registers.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"

namespace fxcpp::fx {

std::string generate_code(const Graph& g);

// For each node, the index (in graph order) of the last node that consumes
// it; -1 when unused. Shared by codegen and CompiledGraph.
std::unordered_map<const Node*, int> last_use_index(
    const std::vector<Node*>& order);

}  // namespace fxcpp::fx
