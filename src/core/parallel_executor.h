// ParallelExecutor — inter-op parallel execution of the compiled tape.
//
// The paper's production story (Section 6.2.3) is overlapping independent
// work captured in the fx IR. Both Interpreter::run and CompiledGraph::run
// walk the DAG strictly node-by-node; wide graphs (ResNet branches, split
// submodules) leave their inter-op parallelism on the table. This executor
// compiles a CompiledGraph's Instr tape into a dependency-counted schedule
// (ready-queue of instructions whose input counts hit zero, atomic decrement
// on completion) and runs it over an rt::ThreadPool via rt::TaskGroup,
// reusing the tape's pre-resolved call targets so per-node dispatch stays as
// cheap as the serial tape.
//
// Determinism: every instruction computes the same kernel on the same
// operands regardless of interleaving, each register has exactly one writer,
// and readers are only scheduled after their producer's completion edge —
// so outputs are bit-identical to the serial tape and the Interpreter for
// any thread count. Failure is deterministic too: when nodes throw, run()
// rethrows the error of the *earliest instruction in tape order* (not the
// first to arrive on a racing worker), which is exactly the node the serial
// tape would have failed at — the property the differential fault-injection
// fuzz asserts across engines and thread counts.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/graph_module.h"
#include "runtime/thread_pool.h"

namespace fxcpp::fx {

// Dependency-counted schedule derived from a tape's use-def chains.
struct Schedule {
  // For instruction i: number of distinct producer instructions whose
  // results it reads. Placeholder registers have no producer instruction
  // (they are filled from the inputs before execution starts).
  std::vector<int> dep_count;
  // For instruction i: instructions unblocked (partially) by its completion.
  std::vector<std::vector<int>> succs;
  // Instructions with dep_count == 0, runnable immediately.
  std::vector<int> initial_ready;
  // For instruction i: distinct registers it reads.
  std::vector<std::vector<int>> reads;
  // For register r: total number of reading instructions. Used for
  // reference-counted freeing (the parallel analog of Instr::frees, whose
  // serial-order "last use" is meaningless under reordering).
  std::vector<int> reg_reads;
};

// Build the schedule for a compiled tape. Pure analysis (no execution);
// also used by the analysis rule "schedule.coverage".
Schedule build_schedule(const CompiledGraph& cg);

// Plan-aware schedule: build_schedule plus the anti-dependency (WAR) edges
// a shared arena requires. Two planned intervals may share arena bytes only
// because the first is dead before the second is defined *in tape order*;
// under reordering that liveness argument needs edges: every reader of the
// earlier interval (and its definition) must complete before the later
// interval's definition runs. In-place instructions likewise wait for every
// other reader of the buffer they overwrite. With these edges the executor
// keeps bit-identical outputs while executing into one arena.
Schedule build_planned_schedule(const CompiledGraph& cg, const TapePlan& plan);

// Observability counters for one run(); lets tests and benches confirm
// actual overlap instead of trusting the scheduler.
struct ExecutorStats {
  struct NodeStat {
    const Node* node = nullptr;  // provenance (may be null)
    double seconds = 0.0;        // kernel time for this instruction
  };
  std::vector<NodeStat> nodes;   // completion order (nondeterministic)
  std::size_t nodes_executed = 0;
  int max_concurrency = 0;       // peak simultaneously-running instructions
  int max_ready_queue = 0;       // peak scheduled-but-not-started depth
  double total_seconds = 0.0;    // wall clock of the whole run
};

struct ExecutorOptions {
  // Worker threads for this executor's private pool; 0 means the current
  // rt::get_num_interop_threads() setting.
  int num_threads = 0;
  // Record ExecutorStats during run() (adds two atomic ops per node plus a
  // mutex push per node; leave off in production).
  bool collect_stats = false;
  // Per-instruction begin/end observer (core/exec_hooks.h). Invoked
  // concurrently from worker threads — the implementation must be
  // thread-safe. Must outlive run(); nullptr disables instrumentation.
  ExecHooks* hooks = nullptr;
  // Cooperative cancellation token: when it becomes true, instructions not
  // yet started are skipped and run() throws ExecError{Cancelled}. Checked
  // at instruction granularity — an already-running kernel finishes first.
  // The caller owns the atomic; nullptr disables cancellation.
  const std::atomic<bool>* cancel = nullptr;
  // Wall-clock budget for one run() (seconds; 0 = unlimited). On expiry the
  // remaining schedule is skipped and run() throws
  // ExecError{DeadlineExceeded}. Like `cancel`, cooperative at instruction
  // granularity: a single wedged kernel delays the return by at most its
  // own runtime, and the executor stays usable afterwards.
  double deadline_seconds = 0.0;
  // Execute into the module's installed memory plan (see core/memory_plan.h
  // and passes::compile_planned). The executor snapshots the plan at
  // construction, builds the anti-dependency-augmented schedule, and owns a
  // private arena, so concurrent executors never share planned memory.
  // Inputs that violate the plan's shape contract make run() throw
  // ExecError{GuardViolation} — a long-lived planned executor is
  // shape-specialized; use GraphModule::run_planned_parallel for the
  // transparent-replan convenience. Ignored when the module has no plan
  // (and no explicit `plan` below).
  bool use_plan = false;
  // Explicit plan override (requires use_plan). When set, the executor runs
  // this plan instead of the module's installed one — the plan-cache path
  // hands an entry's specialization here. An explicit plan relaxes run()'s
  // contract check: the caller (the cache) has matched inputs by signature,
  // and off-contract in-bucket shapes execute safely via the planner's
  // exact-size placement fallback.
  std::shared_ptr<const TapePlan> plan;
};

class ParallelExecutor {
 public:
  // Compiles the schedule from gm's current tape (recompiles gm first if
  // needed). The executor owns a private inter-op pool so concurrent
  // executors and the intra-op kernel pool never contend; kernels inside
  // nodes may still parallel_for() over the intra-op pool without deadlock.
  explicit ParallelExecutor(GraphModule& gm, ExecutorOptions opts = {});

  // Execute the graph; same contract as CompiledGraph::run. On node failure
  // the failed node's successors are skipped, independent work drains, and
  // the schedule-order-earliest error is rethrown as an ExecError carrying
  // node provenance and the live-register snapshot.
  std::vector<RtValue> run(std::vector<RtValue> inputs);

  const Schedule& schedule() const { return schedule_; }
  // Stats of the most recent run() (empty unless opts.collect_stats).
  const ExecutorStats& stats() const { return stats_; }
  int num_threads() const { return pool_->size(); }
  // The memory plan this executor runs under (null = unplanned).
  const std::shared_ptr<const TapePlan>& plan() const { return plan_; }

 private:
  GraphModule& gm_;
  ExecutorOptions opts_;
  Schedule schedule_;
  std::unique_ptr<rt::ThreadPool> pool_;
  ExecutorStats stats_;
  std::shared_ptr<const TapePlan> plan_;
  std::shared_ptr<MemoryArena> arena_;
  bool plan_is_explicit_ = false;  // came via opts.plan, not gm.plan()
};

}  // namespace fxcpp::fx
