// Graph — the container of the fx IR (Section 4.2): an insertion-ordered
// linear series of Nodes forming a DAG through their argument references.
// There is deliberately no control flow and no mutation modeling
// (Sections 5.5/5.6): analyses are simple forward propagation and
// transformations need no aliasing analysis.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/node.h"

namespace fxcpp::fx {

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // --- node creation (at the current insertion point) -------------------
  Node* placeholder(const std::string& name);
  Node* call_function(const std::string& target, std::vector<Argument> args,
                      Kwargs kwargs = {});
  Node* call_method(const std::string& target, std::vector<Argument> args,
                    Kwargs kwargs = {});
  Node* call_module(const std::string& target, std::vector<Argument> args,
                    Kwargs kwargs = {});
  Node* get_attr(const std::string& target);
  Node* output(Argument value);
  Node* create_node(Opcode op, const std::string& target,
                    std::vector<Argument> args = {}, Kwargs kwargs = {},
                    const std::string& name_hint = "");

  // Copy `src` (from this or another graph) into this graph at the insertion
  // point, mapping its arguments through `arg_map`.
  Node* copy_node(const Node& src,
                  const std::function<Argument(const Argument&)>& arg_map);

  // Inline every non-placeholder node of `src` at the insertion point,
  // substituting `placeholder_args` for src's placeholders (in order).
  // Returns the argument that src's output node returned, remapped.
  // This is how re-tracing a GraphModule works (Figure 3) and how pattern
  // replacements are spliced in.
  Argument inline_graph(const Graph& src,
                        const std::vector<Argument>& placeholder_args);

  // --- insertion point ----------------------------------------------------
  // New nodes are appended before `n` (nullptr = append at end, the default).
  // Returns the previous insertion point so callers can restore it.
  Node* set_insert_point_before(Node* n);

  // RAII insertion-point scope.
  class InsertScope {
   public:
    InsertScope(Graph& g, Node* before)
        : g_(g), prev_(g.set_insert_point_before(before)) {}
    ~InsertScope() { g_.set_insert_point_before(prev_); }
    InsertScope(const InsertScope&) = delete;
    InsertScope& operator=(const InsertScope&) = delete;

   private:
    Graph& g_;
    Node* prev_;
  };

  // --- manipulation ---------------------------------------------------------
  // Remove a node; throws std::logic_error if it still has users.
  void erase_node(Node* n);
  // Reposition `n` immediately before `before` (topological order is the
  // caller's responsibility until lint()).
  void move_before(Node* n, Node* before);

  // Remove nodes (except placeholders/output) with no users. Returns the
  // number erased. Trivially correct because the IR has no side effects —
  // the payoff of the Section 5.6 purity decision.
  int eliminate_dead_code();

  // --- inspection -------------------------------------------------------------
  // Snapshot of nodes in graph order (safe to mutate the graph while
  // iterating the snapshot).
  std::vector<Node*> nodes() const;
  std::size_t size() const { return nodes_.size(); }
  Node* output_node() const { return output_; }
  std::vector<Node*> placeholders() const;
  // Find by unique name; nullptr if absent.
  Node* find(const std::string& name) const;

  // Verify IR invariants: unique names, single output (last), placeholders
  // first, every argument reference defined earlier in the list, use-def
  // chains consistent. Throws std::logic_error with a description.
  void lint() const;

  // Figure-1 style multi-line listing.
  std::string to_string() const;

  // Deep copy; `node_map` (if given) receives src-node -> new-node.
  std::unique_ptr<Graph> clone(
      std::unordered_map<const Node*, Node*>* node_map = nullptr) const;

  std::string unique_name(const std::string& hint);

 private:
  using NodeList = std::list<std::unique_ptr<Node>>;
  NodeList::iterator iter_of(Node* n);
  Node* insert(std::unique_ptr<Node> n);

  NodeList nodes_;
  std::unordered_map<Node*, NodeList::iterator> pos_;
  std::unordered_map<std::string, int> name_counts_;
  Node* insert_before_ = nullptr;
  Node* output_ = nullptr;
};

}  // namespace fxcpp::fx
