#include "core/plan_cache.h"

#include <algorithm>
#include <sstream>

#include "tensor/dtype.h"

namespace fxcpp::fx {

// ---------------------------------------------------------------------------
// PlanCacheStats
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string PlanCacheStats::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"hits\": " << hits << ", \"bucket_hits\": " << bucket_hits
     << ", \"misses\": " << misses << ", \"replans\": " << replans
     << ", \"evictions\": " << evictions << ", \"entries\": " << entries
     << ", \"hit_rate\": " << hit_rate() << ", \"per_entry\": [";
  for (std::size_t i = 0; i < per_entry.size(); ++i) {
    const PlanCacheEntryStats& e = per_entry[i];
    os << (i ? ", " : "") << "{\"signature\": \"" << json_escape(e.signature)
       << "\", \"hits\": " << e.hits << ", \"bucket_hits\": " << e.bucket_hits
       << ", \"arena_bytes\": " << e.arena_bytes
       << ", \"planned_count\": " << e.planned_count << "}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// PlanCacheEntry
// ---------------------------------------------------------------------------

PlanCacheEntry::PlanCacheEntry(std::string signature,
                               std::shared_ptr<const TapePlan> plan,
                               std::size_t max_arenas)
    : signature_(std::move(signature)),
      plan_(std::move(plan)),
      max_arenas_(max_arenas == 0 ? 1 : max_arenas) {}

std::shared_ptr<MemoryArena> PlanCacheEntry::acquire_arena() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!pool_.empty()) {
      std::shared_ptr<MemoryArena> a = std::move(pool_.back());
      pool_.pop_back();
      return a;
    }
  }
  return std::make_shared<MemoryArena>(plan_->arena_bytes);
}

void PlanCacheEntry::release_arena(std::shared_ptr<MemoryArena> arena) {
  if (!arena) return;
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_.size() < max_arenas_) pool_.push_back(std::move(arena));
  // Over the pool bound the arena simply dies with the last shared_ptr.
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanCache::PlanCache(PlanCacheOptions opts) : opts_(opts) {
  if (opts_.capacity == 0) opts_.capacity = 1;
  if (opts_.bucket_min < 1) opts_.bucket_min = 1;
}

std::int64_t PlanCache::bucket_dim(std::int64_t d) const {
  // An empty batch is its own bucket ("~0"): rounding 0 up into bucket_min
  // would collide empty-tensor requests with the 1..bucket_min bucket, and a
  // plan specialized at batch>=1 is the wrong contract for a 0-row run.
  if (d <= 0) return 0;
  if (d <= opts_.bucket_min) return opts_.bucket_min;
  std::int64_t b = opts_.bucket_min;
  while (b < d) b <<= 1;  // next power-of-two multiple of the minimum bucket
  return b;
}

std::string PlanCache::render_signature(
    const std::vector<std::pair<Shape, DType>>& shapes,
    const std::vector<bool>& is_tensor) const {
  std::string sig;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (i) sig += ';';
    if (!is_tensor[i]) {
      sig += "<other>";
      continue;
    }
    sig += dtype_name(shapes[i].second);
    sig += '[';
    const Shape& s = shapes[i].first;
    for (std::size_t d = 0; d < s.size(); ++d) {
      if (d) sig += ',';
      if (d == 0 && opts_.bucket_batch_dim) {
        sig += '~';
        sig += std::to_string(bucket_dim(s[d]));
      } else {
        sig += std::to_string(s[d]);
      }
    }
    sig += ']';
  }
  return sig;
}

std::string PlanCache::signature_of(const std::vector<RtValue>& inputs) const {
  std::vector<std::pair<Shape, DType>> shapes;
  std::vector<bool> is_tensor;
  shapes.reserve(inputs.size());
  is_tensor.reserve(inputs.size());
  for (const RtValue& v : inputs) {
    if (rt_is_tensor(v)) {
      const Tensor& t = rt_tensor(v);
      shapes.emplace_back(t.sizes(), t.dtype());
      is_tensor.push_back(true);
    } else {
      shapes.emplace_back(Shape{}, DType::Float32);
      is_tensor.push_back(false);
    }
  }
  return render_signature(shapes, is_tensor);
}

std::string PlanCache::signature_of_guards(
    const std::vector<GuardSpec>& guards) const {
  std::vector<std::pair<Shape, DType>> shapes;
  std::vector<bool> is_tensor;
  for (const GuardSpec& g : guards) {
    if (g.placeholder.empty()) return "";  // unnamed spec: underivable
    shapes.emplace_back(g.shape, g.dtype);
    is_tensor.push_back(true);
  }
  return render_signature(shapes, is_tensor);
}

std::shared_ptr<PlanCacheEntry> PlanCache::lookup(
    const std::vector<RtValue>& inputs) {
  const std::string sig = signature_of(inputs);
  std::shared_ptr<PlanCacheEntry> entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(sig);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // mark MRU
    entry = *it->second;
    ++hits_;
  }
  entry->hits_.fetch_add(1, std::memory_order_relaxed);
  // A signature hit whose exact shapes differ from the plan's contract can
  // only happen under bucketed keying: the entry serves the whole bucket,
  // with off-canonical sizes degrading to heap allocation, never corrupting.
  if (!plan_matches_inputs(*entry->plan(), inputs)) {
    entry->bucket_hits_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    ++bucket_hits_;
  }
  return entry;
}

std::shared_ptr<PlanCacheEntry> PlanCache::peek(
    const std::string& signature) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(signature);
  return it == index_.end() ? nullptr : *it->second;
}

std::shared_ptr<PlanCacheEntry> PlanCache::insert(
    const std::vector<RtValue>& inputs,
    std::shared_ptr<const TapePlan> plan) {
  const std::string sig = signature_of(inputs);
  auto entry = std::make_shared<PlanCacheEntry>(sig, std::move(plan),
                                                opts_.max_arenas_per_entry);
  std::lock_guard<std::mutex> lk(mu_);
  ++replans_;
  const auto it = index_.find(sig);
  if (it != index_.end()) {
    // Replace in place (bucketed re-specialization); running threads keep
    // the old entry alive through their shared_ptrs.
    *it->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return entry;
  }
  lru_.push_front(entry);
  index_[sig] = lru_.begin();
  evict_over_capacity_locked();
  return entry;
}

void PlanCache::evict_over_capacity_locked() {
  while (lru_.size() > opts_.capacity) {
    index_.erase(lru_.back()->signature());
    lru_.pop_back();
    ++evictions_;
  }
}

bool PlanCache::canonical_inputs(const std::vector<RtValue>& inputs,
                                 std::vector<Tensor>* out) const {
  std::vector<Tensor> canon;
  canon.reserve(inputs.size());
  for (const RtValue& v : inputs) {
    if (!rt_is_tensor(v)) return false;
    const Tensor& t = rt_tensor(v);
    Shape s = t.sizes();
    if (opts_.bucket_batch_dim && !s.empty()) s[0] = bucket_dim(s[0]);
    if (s == t.sizes()) {
      canon.push_back(t);  // already canonical: plan on the real data
    } else {
      canon.push_back(Tensor::zeros(s, t.dtype()));
    }
  }
  *out = std::move(canon);
  return true;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  std::lock_guard<std::mutex> lk(mu_);
  s.hits = hits_;
  s.bucket_hits = bucket_hits_;
  s.misses = misses_;
  s.replans = replans_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.per_entry.reserve(lru_.size());
  for (const auto& e : lru_) {
    PlanCacheEntryStats es;
    es.signature = e->signature();
    es.hits = e->hits();
    es.bucket_hits = e->bucket_hits();
    es.arena_bytes = e->plan()->arena_bytes;
    es.planned_count = e->plan()->planned_count;
    s.per_entry.push_back(std::move(es));
  }
  return s;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  opts_.capacity = capacity == 0 ? 1 : capacity;
  evict_over_capacity_locked();
}

PlanCacheOptions PlanCache::options() const {
  std::lock_guard<std::mutex> lk(mu_);
  return opts_;
}

std::vector<std::shared_ptr<PlanCacheEntry>> PlanCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace fxcpp::fx
