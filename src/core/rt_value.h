// RtValue — a concrete runtime value flowing through graph execution
// (Interpreter / CompiledGraph): the small set of "Python values" the IR's
// immediate arguments and tensor operations produce.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp::fx {

using RtValue =
    std::variant<std::monostate, Tensor, std::int64_t, double, bool,
                 std::string, std::vector<std::int64_t>, std::vector<Tensor>>;

inline bool rt_is_tensor(const RtValue& v) {
  return std::holds_alternative<Tensor>(v);
}

inline const Tensor& rt_tensor(const RtValue& v) {
  if (!rt_is_tensor(v)) throw std::logic_error("RtValue: expected Tensor");
  return std::get<Tensor>(v);
}

inline std::int64_t rt_int(const RtValue& v) {
  if (std::holds_alternative<std::int64_t>(v)) return std::get<std::int64_t>(v);
  if (std::holds_alternative<double>(v)) {
    return static_cast<std::int64_t>(std::get<double>(v));
  }
  throw std::logic_error("RtValue: expected int");
}

inline double rt_double(const RtValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  throw std::logic_error("RtValue: expected double");
}

inline bool rt_bool(const RtValue& v) {
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v);
  throw std::logic_error("RtValue: expected bool");
}

inline std::vector<std::int64_t> rt_int_list(const RtValue& v) {
  if (std::holds_alternative<std::vector<std::int64_t>>(v)) {
    return std::get<std::vector<std::int64_t>>(v);
  }
  if (std::holds_alternative<std::int64_t>(v)) {
    return {std::get<std::int64_t>(v)};
  }
  throw std::logic_error("RtValue: expected int list");
}

// Undefined-tensor-aware accessor for optional tensor params (e.g. bias).
inline Tensor rt_opt_tensor(const RtValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return Tensor();
  return rt_tensor(v);
}

}  // namespace fxcpp::fx
