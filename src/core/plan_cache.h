// Guard-keyed multi-plan cache for dynamic input shapes.
//
// The replanner (passes::compile_planned) makes planned execution shape-
// polymorphic, but it re-plans — ShapeProp (a full graph interpretation)
// plus alias analysis plus first-fit packing — on *every* shape change.
// Production traffic has a few hot shapes; this cache maps an input-shape
// signature (the same shape/dtype facts the PR 4 GuardSpecs pin) to a fully
// specialized planned tape, so mixed-shape traffic plans each distinct
// signature once and then never again on the hot path. A cache hit performs
// a signature hash plus a guard check — zero planning work.
//
// Keying. The signature is the canonical rendering of each input's dtype and
// dims ("f32[8,16];f32[8]"); non-tensor inputs contribute an unchecked tag.
// With bucketing enabled (PlanCacheOptions::bucket_batch_dim), dim 0 of every
// tensor input is rounded up to the next power-of-two bucket before keying
// ("f32[~16,64]"), so a long tail of batch sizes collapses into a bounded
// set of entries. Degenerate batches do not alias: a dim-0 of 0 keys to its
// own "~0" bucket (never rounded up into the 1..bucket_min bucket), so the
// empty-tensor requests a dynamic batcher generates can't be served by a
// plan specialized at batch >= 1. A bucketed entry's plan is specialized at the bucket's
// rounded-up canonical shape where the graph admits it; smaller batches in
// the bucket still execute that plan *safely* — the planner's exact-size
// single-shot placement hint means any instruction whose actual output size
// disagrees with the planned slot simply falls back to the heap, it never
// corrupts (see core/memory_plan.h). Such serves are counted as bucket_hits.
//
// Concurrency & eviction safety. The cache is internally synchronized, and
// entries are handed out as shared_ptrs: evicting an entry only drops the
// cache's reference, so threads still executing an evicted plan keep both
// the plan and any leased arena alive until they finish. Each entry pools a
// small number of arenas (acquire_arena/release_arena), so concurrent runs
// of the same plan never share arena bytes and steady-state hits allocate
// nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/memory_plan.h"

namespace fxcpp::fx {

struct PlanCacheOptions {
  // LRU bound on cached specializations (>= 1; excess insertions evict the
  // least recently used entry).
  std::size_t capacity = 8;
  // Round dim 0 of every tensor input up to the next power-of-two bucket
  // (at least bucket_min) when deriving the signature. Off = exact match.
  bool bucket_batch_dim = false;
  std::int64_t bucket_min = 1;
  // Arenas pooled per entry; concurrency beyond this allocates transient
  // arenas instead of blocking.
  std::size_t max_arenas_per_entry = 4;
};

// Per-entry slice of the aggregate stats (see PlanCacheStats::per_entry).
struct PlanCacheEntryStats {
  std::string signature;
  std::uint64_t hits = 0;
  std::uint64_t bucket_hits = 0;  // hits whose exact shape differed from the
                                  // plan's guards (bucketed keying only)
  std::size_t arena_bytes = 0;
  int planned_count = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;         // signature matches (includes bucket_hits)
  std::uint64_t bucket_hits = 0;  // hits served by a bucket-canonical plan
  std::uint64_t misses = 0;       // lookups with no entry for the signature
  std::uint64_t replans = 0;      // plans inserted (one planning pass each)
  std::uint64_t evictions = 0;    // entries dropped by the LRU bound
  std::size_t entries = 0;        // current size
  std::vector<PlanCacheEntryStats> per_entry;  // MRU -> LRU order

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  // Machine-readable dump; embedded in the profiler's summary JSON.
  std::string to_json() const;
};

// One cached specialization: an immutable plan plus a pool of arenas sized
// for it. Held by shared_ptr so eviction is safe under running threads.
class PlanCacheEntry {
 public:
  PlanCacheEntry(std::string signature, std::shared_ptr<const TapePlan> plan,
                 std::size_t max_arenas);

  const std::shared_ptr<const TapePlan>& plan() const { return plan_; }
  const std::string& signature() const { return signature_; }

  // Lease an arena for one run: pops from the pool or allocates a fresh one
  // sized plan()->arena_bytes. Return it with release_arena when the run's
  // outputs no longer live in it (planned outputs that escape are heap-held,
  // so "when the run returns" is always safe).
  std::shared_ptr<MemoryArena> acquire_arena();
  void release_arena(std::shared_ptr<MemoryArena> arena);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_hits() const {
    return bucket_hits_.load(std::memory_order_relaxed);
  }

 private:
  friend class PlanCache;
  std::string signature_;
  std::shared_ptr<const TapePlan> plan_;
  std::size_t max_arenas_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> bucket_hits_{0};
  std::mutex pool_mu_;
  std::vector<std::shared_ptr<MemoryArena>> pool_;
};

// RAII arena lease: acquire on construction, release on destruction even
// when the run throws.
class ArenaLease {
 public:
  explicit ArenaLease(const std::shared_ptr<PlanCacheEntry>& entry)
      : entry_(entry), arena_(entry->acquire_arena()) {}
  ~ArenaLease() { entry_->release_arena(std::move(arena_)); }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  std::byte* base() { return arena_->base(); }

 private:
  std::shared_ptr<PlanCacheEntry> entry_;
  std::shared_ptr<MemoryArena> arena_;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions opts = {});

  // Canonical signature of an input vector under this cache's keying rules.
  std::string signature_of(const std::vector<RtValue>& inputs) const;
  // Signature derived from a plan's input contract (named specs only);
  // empty when any spec is unnamed. Used by the plan.cache-coherence rule
  // to cross-check that an entry's key and its guards agree.
  std::string signature_of_guards(const std::vector<GuardSpec>& guards) const;

  // Counted lookup: returns the entry for inputs' signature and marks it
  // most recently used, or nullptr on a miss. A hit whose exact shapes
  // differ from the entry plan's guards (bucketed keying) still returns the
  // entry and is additionally counted as a bucket hit.
  std::shared_ptr<PlanCacheEntry> lookup(const std::vector<RtValue>& inputs);
  // Uncounted peek by signature (double-checked locking on the miss path).
  std::shared_ptr<PlanCacheEntry> peek(const std::string& signature) const;

  // Insert (or replace) the entry for inputs' signature, evicting LRU
  // entries above capacity. Counted as one replan. Returns the new entry.
  std::shared_ptr<PlanCacheEntry> insert(const std::vector<RtValue>& inputs,
                                         std::shared_ptr<const TapePlan> plan);

  // The inputs' shapes at the signature's canonical planning point: dim 0
  // rounded up to the bucket (identity when bucketing is off). Returns false
  // — and leaves `out` untouched — when any input is a non-tensor, in which
  // case callers plan at the exact inputs instead.
  bool canonical_inputs(const std::vector<RtValue>& inputs,
                        std::vector<Tensor>* out) const;

  PlanCacheStats stats() const;
  std::size_t size() const;
  void clear();
  // Shrinks (evicting LRU entries) or grows the bound; capacity >= 1.
  void set_capacity(std::size_t capacity);
  PlanCacheOptions options() const;  // copy (capacity may change under us)

  // Snapshot of the live entries, MRU first (verifier rule + tests).
  std::vector<std::shared_ptr<PlanCacheEntry>> entries() const;

 private:
  std::int64_t bucket_dim(std::int64_t d) const;
  std::string render_signature(
      const std::vector<std::pair<Shape, DType>>& shapes,
      const std::vector<bool>& is_tensor) const;
  void evict_over_capacity_locked();

  PlanCacheOptions opts_;
  mutable std::mutex mu_;
  // front = most recently used.
  std::list<std::shared_ptr<PlanCacheEntry>> lru_;
  std::unordered_map<std::string,
                     std::list<std::shared_ptr<PlanCacheEntry>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t bucket_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fxcpp::fx
