#include "core/interpreter.h"

#include <stdexcept>

#include "core/codegen.h"
#include "core/exec_hooks.h"
#include "core/functional.h"
#include "resilience/exec_error.h"

namespace fxcpp::fx {

RtValue Interpreter::run(std::vector<RtValue> inputs) {
  fn::ensure_registered();
  env_.clear();
  inputs_ = std::move(inputs);
  next_input_ = 0;
  const std::vector<Node*> order = gm_.graph().nodes();
  // Arity is validated up front (not lazily at each placeholder) so too-few
  // and too-many inputs fail identically here and in the tape engines, and
  // before any node — or hook — has run.
  std::size_t n_placeholders = 0;
  for (const Node* n : order) {
    if (n->op() == Opcode::Placeholder) ++n_placeholders;
  }
  if (inputs_.size() != n_placeholders) {
    throw arity_error(n_placeholders, inputs_.size())
        .with_engine(Engine::Interpreter);
  }
  // Last-use indices from the use-def chains: an entry is erased from env_
  // as soon as its final reader has executed (-1 = no readers), so a deep
  // chain holds O(live set) tensors instead of every intermediate.
  const auto last = last_use_index(order);
  if (hooks_) hooks_->on_run_begin(order.size());
  RtValue result;
  try {
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Node* n = order[i];
      try {
        if (hooks_) hooks_->on_node_begin(*n);
        RtValue v = run_node(*n);
        if (hooks_) hooks_->on_node_output(*n, v);
        if (hooks_) hooks_->on_node_end(*n, v);
        if (n->op() == Opcode::Output) {
          result = std::move(v);
        } else {
          auto it = last.find(n);
          if (it == last.end() || it->second >= 0) env_[n] = std::move(v);
          // else: no users — drop the value immediately.
        }
      } catch (...) {
        // Snapshot the live environment (graph order) before unwinding
        // clears it; the failing node's provenance rides the same error.
        std::vector<std::string> live;
        for (const Node* ln : order) {
          if (env_.count(ln)) live.push_back(ln->name());
        }
        rethrow_annotated(n, Engine::Interpreter, std::move(live));
      }
      for (const Node* in : n->input_nodes()) {
        auto it = last.find(in);
        if (it != last.end() && it->second == static_cast<int>(i)) {
          env_.erase(in);
        }
      }
    }
  } catch (...) {
    // Hook contract: on_run_end fires even for aborted runs.
    if (hooks_) hooks_->on_run_end();
    env_.clear();
    throw;
  }
  if (hooks_) hooks_->on_run_end();
  env_.clear();
  return result;
}

RtValue Interpreter::eval_arg(const Argument& a) const {
  if (a.is_node()) {
    auto it = env_.find(a.node());
    if (it == env_.end()) {
      throw std::logic_error("interpreter: node '" + a.node()->name() +
                             "' evaluated before its definition");
    }
    return it->second;
  }
  if (a.is_list()) {
    // Seeded with true so an empty list rounds-trips as an empty int list,
    // matching the tape/codegen paths (recompile() pre-decodes it the same
    // way) instead of degrading into an empty tensor list.
    bool all_int = true;
    for (const auto& item : a.list()) all_int = all_int && item.is_int();
    if (all_int) return a.int_list();
    std::vector<Tensor> ts;
    ts.reserve(a.list().size());
    for (const auto& item : a.list()) ts.push_back(rt_tensor(eval_arg(item)));
    return ts;
  }
  if (a.is_int()) return a.as_int();
  if (a.is_double()) return a.as_double();
  if (a.is_bool()) return a.as_bool();
  if (a.is_string()) return a.as_string();
  return RtValue();  // None
}

RtValue Interpreter::run_node(const Node& n) {
  switch (n.op()) {
    case Opcode::Placeholder: {
      if (next_input_ >= inputs_.size()) {
        throw std::invalid_argument("interpreter: missing input for '" +
                                    n.name() + "'");
      }
      return std::move(inputs_[next_input_++]);
    }
    case Opcode::GetAttr:
      return gm_.resolve_attr(n.target());
    case Opcode::CallFunction:
    case Opcode::CallMethod: {
      const auto& reg = n.op() == Opcode::CallFunction
                            ? OpRegistry::functions()
                            : OpRegistry::methods();
      const OpInfo& info = reg.at(n.target());
      std::vector<RtValue> args;
      args.reserve(n.args().size());
      for (const auto& a : n.args()) args.push_back(eval_arg(a));
      std::vector<std::pair<std::string, RtValue>> kwargs;
      for (const auto& [k, v] : n.kwargs()) kwargs.emplace_back(k, eval_arg(v));
      return info.run(merge_kwargs(info, std::move(args), kwargs));
    }
    case Opcode::CallModule: {
      nn::Module::Ptr m = gm_.resolve_module(n.target());
      std::vector<Value> args;
      args.reserve(n.args().size());
      for (const auto& a : n.args()) {
        args.emplace_back(rt_tensor(eval_arg(a)));
      }
      Value out = (*m)(std::move(args));
      if (out.is_tensor()) return out.tensor();
      if (out.is_tuple()) {
        std::vector<Tensor> ts;
        for (const auto& item : out.tuple()) ts.push_back(item.tensor());
        return ts;
      }
      return RtValue();
    }
    case Opcode::Output:
      return eval_arg(n.args().at(0));
  }
  throw std::logic_error("interpreter: unknown opcode");
}

}  // namespace fxcpp::fx
