#include "core/interpreter.h"

#include <stdexcept>

#include "core/functional.h"

namespace fxcpp::fx {

RtValue Interpreter::run(std::vector<RtValue> inputs) {
  fn::ensure_registered();
  env_.clear();
  inputs_ = std::move(inputs);
  next_input_ = 0;
  RtValue result;
  for (const Node* n : gm_.graph().nodes()) {
    RtValue v = run_node(*n);
    if (n->op() == Opcode::Output) {
      result = std::move(v);
    } else {
      env_[n] = std::move(v);
    }
  }
  return result;
}

RtValue Interpreter::eval_arg(const Argument& a) const {
  if (a.is_node()) {
    auto it = env_.find(a.node());
    if (it == env_.end()) {
      throw std::logic_error("interpreter: node '" + a.node()->name() +
                             "' evaluated before its definition");
    }
    return it->second;
  }
  if (a.is_list()) {
    bool all_int = !a.list().empty();
    for (const auto& item : a.list()) all_int = all_int && item.is_int();
    if (all_int) return a.int_list();
    std::vector<Tensor> ts;
    ts.reserve(a.list().size());
    for (const auto& item : a.list()) ts.push_back(rt_tensor(eval_arg(item)));
    return ts;
  }
  if (a.is_int()) return a.as_int();
  if (a.is_double()) return a.as_double();
  if (a.is_bool()) return a.as_bool();
  if (a.is_string()) return a.as_string();
  return RtValue();  // None
}

RtValue Interpreter::run_node(const Node& n) {
  switch (n.op()) {
    case Opcode::Placeholder: {
      if (next_input_ >= inputs_.size()) {
        throw std::invalid_argument("interpreter: missing input for '" +
                                    n.name() + "'");
      }
      return std::move(inputs_[next_input_++]);
    }
    case Opcode::GetAttr:
      return gm_.resolve_attr(n.target());
    case Opcode::CallFunction:
    case Opcode::CallMethod: {
      const auto& reg = n.op() == Opcode::CallFunction
                            ? OpRegistry::functions()
                            : OpRegistry::methods();
      const OpInfo& info = reg.at(n.target());
      std::vector<RtValue> args;
      args.reserve(n.args().size());
      for (const auto& a : n.args()) args.push_back(eval_arg(a));
      std::vector<std::pair<std::string, RtValue>> kwargs;
      for (const auto& [k, v] : n.kwargs()) kwargs.emplace_back(k, eval_arg(v));
      return info.run(merge_kwargs(info, std::move(args), kwargs));
    }
    case Opcode::CallModule: {
      nn::Module::Ptr m = gm_.resolve_module(n.target());
      std::vector<Value> args;
      args.reserve(n.args().size());
      for (const auto& a : n.args()) {
        args.emplace_back(rt_tensor(eval_arg(a)));
      }
      Value out = (*m)(std::move(args));
      if (out.is_tensor()) return out.tensor();
      if (out.is_tuple()) {
        std::vector<Tensor> ts;
        for (const auto& item : out.tuple()) ts.push_back(item.tensor());
        return ts;
      }
      return RtValue();
    }
    case Opcode::Output:
      return eval_arg(n.args().at(0));
  }
  throw std::logic_error("interpreter: unknown opcode");
}

}  // namespace fxcpp::fx
