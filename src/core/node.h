// Node — one instruction of the paper's 6-opcode IR (Section 4.2 and
// Appendix A). Nodes live in a Graph's insertion-ordered list; data
// dependencies are Node references inside args/kwargs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/argument.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace fxcpp::fx {

class Graph;

// Exactly the paper's opcode set (Appendix A.1).
enum class Opcode : std::uint8_t {
  Placeholder,   // function input
  CallFunction,  // call free function named by target
  CallMethod,    // call method `target` on args[0]
  CallModule,    // call sub-Module at qualified path `target`
  GetAttr,       // fetch parameter/buffer at qualified path `target`
  Output,        // return args[0]
};

const char* opcode_name(Opcode op);

// Pass-attached metadata (shape propagation, FLOPs estimates, quantization
// observers, partition ids, ...). Node.meta in torch.fx.
using MetaValue = std::variant<std::monostate, std::int64_t, double, bool,
                               std::string, Shape, DType>;

class Node {
 public:
  Opcode op() const { return op_; }
  const std::string& name() const { return name_; }
  // Raw rename, mirroring torch.fx's assignable `node.name`. Does not go
  // through Graph::unique_name — a colliding name is flagged by lint /
  // structure.duplicate-name rather than silently rewritten.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& target() const { return target_; }

  const std::vector<Argument>& args() const { return args_; }
  const Kwargs& kwargs() const { return kwargs_; }
  Argument kwarg(const std::string& key) const;  // None if absent

  // Rewire inputs (maintains use-def chains via the owning graph).
  void set_args(std::vector<Argument> args);
  void set_kwargs(Kwargs kwargs);
  void set_target(std::string target) { target_ = std::move(target); }

  // Nodes whose args reference this node.
  const std::set<Node*>& users() const { return users_; }
  // Distinct nodes referenced by this node's args/kwargs, in arg order.
  std::vector<Node*> input_nodes() const;

  // Rewrite all users of this node to reference `replacement` instead.
  // Returns the number of users rewritten.
  int replace_all_uses_with(Node* replacement);

  Graph& graph() const { return *graph_; }

  // --- metadata ---------------------------------------------------------
  bool has_meta(const std::string& key) const { return meta_.count(key) != 0; }
  const MetaValue& meta(const std::string& key) const;
  void set_meta(const std::string& key, MetaValue v) { meta_[std::move(key)] = std::move(v); }
  void clear_meta(const std::string& key) { meta_.erase(key); }
  const std::map<std::string, MetaValue>& all_meta() const { return meta_; }

  // Shape/dtype shorthand over meta (set by passes::ShapeProp).
  bool has_shape() const { return has_meta("shape"); }
  const Shape& shape() const { return std::get<Shape>(meta("shape")); }
  DType dtype() const { return std::get<DType>(meta("dtype")); }
  // Transforms call this on nodes they rewrite so stale shape/dtype meta
  // never outlives the values it described (flagged by analysis rule
  // "meta.stale" otherwise).
  void invalidate_shape_meta() {
    meta_.erase("shape");
    meta_.erase("dtype");
  }

  // One line in the Figure-1 style:
  //   relu = call_function target=relu args=(x,)
  std::string format() const;

 private:
  friend class Graph;
  Node() = default;

  void add_input_uses();
  void remove_input_uses();

  Graph* graph_ = nullptr;
  Opcode op_ = Opcode::Placeholder;
  std::string name_;
  std::string target_;
  std::vector<Argument> args_;
  Kwargs kwargs_;
  std::set<Node*> users_;
  std::map<std::string, MetaValue> meta_;
};

}  // namespace fxcpp::fx
