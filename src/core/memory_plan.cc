#include "core/memory_plan.h"

namespace fxcpp::fx {

bool plan_matches_inputs(const TapePlan& plan,
                         const std::vector<RtValue>& inputs) {
  if (plan.guards.size() != inputs.size()) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const GuardSpec& g = plan.guards[i];
    if (g.placeholder.empty()) continue;  // non-tensor input: unchecked
    if (!rt_is_tensor(inputs[i])) return false;
    const Tensor& t = rt_tensor(inputs[i]);
    if (t.sizes() != g.shape || t.dtype() != g.dtype) return false;
  }
  return true;
}

}  // namespace fxcpp::fx
