// GraphModule — the container for transformed programs (Section 4.2): a
// Graph plus the stateful Module hierarchy it references, itself a Module so
// transformed code drops back into the ecosystem (Section 4.3).
//
// The paper's code generation emits Python source and `exec`s it; the C++
// analog is recompile(), which lowers the Graph to a flat execution tape
// (CompiledGraph) with pre-resolved call targets, pre-decoded immediate
// arguments, and liveness-based register freeing — the same properties
// loaded generated code has. code() still renders the Python-like source
// text of Figures 1-3 for inspection and golden-testing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/module.h"
#include "core/op_registry.h"

namespace fxcpp::fx {

class ExecHooks;

// One step of the lowered execution tape.
struct Instr {
  // Pre-decoded argument: a register reference, an immediate RtValue, or a
  // (possibly nested) list of either.
  struct ArgExpr {
    enum class Kind { Reg, Imm, List };
    Kind kind = Kind::Imm;
    int reg = -1;
    RtValue imm;
    std::vector<ArgExpr> items;
  };

  Opcode op = Opcode::CallFunction;
  const OpInfo* fn = nullptr;    // CallFunction / CallMethod
  // CallModule target, resolved at recompile. Shared ownership: if a
  // transform later swaps the module in the hierarchy, this tape keeps (and
  // keeps running) the module it was compiled against, exactly as a Python
  // GraphModule would keep its bound attribute.
  nn::Module::Ptr module;
  Tensor attr;                  // GetAttr (bound at recompile)
  std::vector<ArgExpr> args;    // kwargs already merged positionally
  int out_reg = -1;
  std::vector<int> frees;       // registers dead after this instruction
  const Node* node = nullptr;   // provenance (error messages)
};

class CompiledGraph {
 public:
  // Execute the tape. `hooks` (optional, core/exec_hooks.h) receives
  // begin/end callbacks around every instruction — the profiler's seam.
  // Placeholders are register fills, not instructions, so they produce no
  // hook events here (unlike Interpreter::run).
  std::vector<RtValue> run(std::vector<RtValue> inputs,
                           ExecHooks* hooks = nullptr) const;

  // Execute one instruction against a register file and return its result
  // (the caller stores it into ins.out_reg / the output list). Shared by
  // the serial run() loop and the inter-op ParallelExecutor; does not apply
  // Instr::frees — register lifetime is the caller's schedule's concern.
  static RtValue exec_instr(const Instr& ins, std::vector<RtValue>& regs);

  int num_registers() const { return num_regs_; }
  const std::vector<Instr>& instrs() const { return instrs_; }
  const std::vector<int>& input_regs() const { return input_regs_; }

 private:
  friend class GraphModule;
  std::vector<Instr> instrs_;
  std::vector<int> input_regs_;
  int num_regs_ = 0;
};

class GraphModule : public nn::Module {
 public:
  // `root` supplies the module hierarchy call_module/get_attr targets
  // resolve against (may be nullptr for traced free functions).
  GraphModule(nn::Module::Ptr root, std::unique_ptr<Graph> graph,
              std::string class_name = "GraphModule");

  Graph& graph() { return *graph_; }
  const Graph& graph() const { return *graph_; }
  nn::Module::Ptr root() const { return root_; }

  // Regenerate the executable tape (and cached source text) from the
  // current Graph. Must be called after mutating the Graph, like
  // GraphModule.recompile() in torch.fx.
  void recompile();
  bool compiled() const { return compiled_ != nullptr; }
  const CompiledGraph& compiled_graph() const;

  // Python-like generated source (Figures 1-3), regenerated on recompile().
  const std::string& code() const;

  // Run the tape. Auto-recompiles on first call.
  Value forward(const std::vector<Value>& inputs) override;

  // Run the tape with inter-op parallelism: independent nodes (ResNet
  // branches, parallel submodules) overlap on a worker pool sized by
  // `num_threads` (0 = rt::get_num_interop_threads()). Output is
  // bit-identical to forward() for any thread count; see
  // core/parallel_executor.h. Auto-recompiles on first call. Repeated
  // callers should hold a ParallelExecutor instead (this convenience
  // rebuilds the schedule per call).
  Value forward_parallel(const std::vector<Value>& inputs,
                         int num_threads = 0);

  // Tensor-in / tensor-out convenience for tests and benches.
  Tensor run(const std::vector<Tensor>& inputs);
  Tensor run(const Tensor& input) { return run(std::vector<Tensor>{input}); }
  Tensor run_parallel(const std::vector<Tensor>& inputs, int num_threads = 0);
  Tensor run_parallel(const Tensor& input, int num_threads = 0) {
    return run_parallel(std::vector<Tensor>{input}, num_threads);
  }

  // Delegated state lookup: searches this module's own children first, then
  // the root hierarchy (so targets recorded during tracing resolve).
  nn::Module::Ptr resolve_module(const std::string& qualname) const;
  Tensor resolve_attr(const std::string& qualname) const;

  // Module-hierarchy lookups delegate to the root so a GraphModule behaves
  // like the module it was traced from (needed for re-tracing and nesting).
  nn::Module::Ptr get_submodule(const std::string& qualname) const override;
  Tensor get_parameter(const std::string& qualname) const override;

  // Dump the generated code and graph listing to a directory
  // (GraphModule.to_folder in the paper, Section 5.4).
  void to_folder(const std::string& dir) const;

 private:
  nn::Module::Ptr root_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<CompiledGraph> compiled_;
  std::string code_;
};

}  // namespace fxcpp::fx
