// GraphModule — the container for transformed programs (Section 4.2): a
// Graph plus the stateful Module hierarchy it references, itself a Module so
// transformed code drops back into the ecosystem (Section 4.3).
//
// The paper's code generation emits Python source and `exec`s it; the C++
// analog is recompile(), which lowers the Graph to a flat execution tape
// (CompiledGraph) with pre-resolved call targets, pre-decoded immediate
// arguments, and liveness-based register freeing — the same properties
// loaded generated code has. code() still renders the Python-like source
// text of Figures 1-3 for inspection and golden-testing.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/module.h"
#include "core/op_registry.h"
#include "resilience/exec_error.h"

namespace fxcpp::fx {

class ExecHooks;
struct TapePlan;   // core/memory_plan.h
class MemoryArena;  // core/memory_plan.h
class PlanCache;       // core/plan_cache.h
class PlanCacheEntry;  // core/plan_cache.h

// Input contract for one placeholder, generated from traced shape/dtype meta
// (resilience::generate_guards). Checked at run entry by
// check_guards_strict() / run_resilient(); a violation is an ExecError with
// code GuardViolation naming the offending placeholder.
struct GuardSpec {
  std::string placeholder;
  Shape shape;
  DType dtype = DType::Float32;
};

// One step of the lowered execution tape.
struct Instr {
  // Pre-decoded argument: a register reference, an immediate RtValue, or a
  // (possibly nested) list of either.
  struct ArgExpr {
    enum class Kind { Reg, Imm, List };
    Kind kind = Kind::Imm;
    int reg = -1;
    RtValue imm;
    std::vector<ArgExpr> items;
  };

  Opcode op = Opcode::CallFunction;
  const OpInfo* fn = nullptr;    // CallFunction / CallMethod
  // CallModule target, resolved at recompile. Shared ownership: if a
  // transform later swaps the module in the hierarchy, this tape keeps (and
  // keeps running) the module it was compiled against, exactly as a Python
  // GraphModule would keep its bound attribute.
  nn::Module::Ptr module;
  Tensor attr;                  // GetAttr (bound at recompile)
  std::vector<ArgExpr> args;    // kwargs already merged positionally
  int out_reg = -1;
  std::vector<int> frees;       // registers dead after this instruction
  const Node* node = nullptr;   // provenance (error messages)
};

class CompiledGraph {
 public:
  // Execute the tape. `hooks` (optional, core/exec_hooks.h) receives
  // begin/end callbacks around every instruction — the profiler's seam.
  // Placeholders are register fills, not instructions, so they produce no
  // hook events here (unlike Interpreter::run).
  std::vector<RtValue> run(std::vector<RtValue> inputs,
                           ExecHooks* hooks = nullptr) const;

  // Planned execution: identical to run(), but before each planned
  // instruction the thread-local placement hint (Storage::arm_placement) is
  // armed with the instruction's arena slot, so the kernel's output
  // allocation adopts pre-sized arena memory instead of hitting the heap.
  // `arena_base` must point at (at least) plan.arena_bytes of 64-byte-
  // aligned memory that outlives the returned values' last use. The caller
  // is responsible for having validated the inputs against plan.guards —
  // GraphModule::run_planned does, and re-plans on mismatch.
  std::vector<RtValue> run_planned(std::vector<RtValue> inputs,
                                   const TapePlan& plan, std::byte* arena_base,
                                   ExecHooks* hooks = nullptr) const;

  // Execute one instruction against a register file and return its result
  // (the caller stores it into ins.out_reg / the output list). Shared by
  // the serial run() loop and the inter-op ParallelExecutor; does not apply
  // Instr::frees — register lifetime is the caller's schedule's concern.
  static RtValue exec_instr(const Instr& ins, std::vector<RtValue>& regs);

  int num_registers() const { return num_regs_; }
  const std::vector<Instr>& instrs() const { return instrs_; }
  const std::vector<int>& input_regs() const { return input_regs_; }
  // Placeholder nodes parallel to input_regs() (provenance for diagnostics).
  const std::vector<const Node*>& input_nodes() const { return input_nodes_; }

 private:
  friend class GraphModule;
  std::vector<RtValue> run_impl(std::vector<RtValue> inputs, ExecHooks* hooks,
                                const TapePlan* plan,
                                std::byte* arena_base) const;
  std::vector<Instr> instrs_;
  std::vector<int> input_regs_;
  // Placeholder provenance parallel to input_regs_, so failure diagnostics
  // can name live inputs even though placeholders are not instructions.
  std::vector<const Node*> input_nodes_;
  int num_regs_ = 0;
};

// Configuration for GraphModule::run_resilient's fallback ladder. Engines
// are attempted in the order parallel -> tape -> interpreter; disable rungs
// to reorder the start of the ladder.
struct ResilientOptions {
  bool try_parallel = true;
  bool try_tape = true;
  bool try_interpreter = true;
  int num_threads = 0;  // parallel rung; 0 = rt::get_num_interop_threads()
  // Check generated GuardSpecs before executing (a violation is never
  // retried — no engine can fix the caller's inputs).
  bool check_guards = true;
  // Wall-clock deadline for the parallel rung (0 = none). Deadline and
  // cancellation failures fall back to the serial engines like any other
  // engine-local failure.
  double deadline_seconds = 0.0;
  ExecHooks* hooks = nullptr;  // observed by every attempted engine
};

// One rung of the ladder as it actually ran.
struct EngineAttempt {
  Engine engine = Engine::Unknown;
  bool ok = false;
  ErrorCode code = ErrorCode::Unknown;
  std::string error;  // what() of the failure, empty when ok
};

struct ResilientReport {
  std::vector<EngineAttempt> attempts;
  Engine succeeded = Engine::Unknown;  // Unknown = every rung failed
};

class GraphModule : public nn::Module {
 public:
  // `root` supplies the module hierarchy call_module/get_attr targets
  // resolve against (may be nullptr for traced free functions).
  GraphModule(nn::Module::Ptr root, std::unique_ptr<Graph> graph,
              std::string class_name = "GraphModule");

  Graph& graph() { return *graph_; }
  const Graph& graph() const { return *graph_; }
  nn::Module::Ptr root() const { return root_; }

  // Regenerate the executable tape (and cached source text) from the
  // current Graph. Must be called after mutating the Graph, like
  // GraphModule.recompile() in torch.fx.
  void recompile();
  bool compiled() const { return compiled_ != nullptr; }
  const CompiledGraph& compiled_graph() const;

  // Python-like generated source (Figures 1-3), regenerated on recompile().
  const std::string& code() const;

  // Run the tape. Auto-recompiles on first call.
  Value forward(const std::vector<Value>& inputs) override;

  // Run the tape with inter-op parallelism: independent nodes (ResNet
  // branches, parallel submodules) overlap on a worker pool sized by
  // `num_threads` (0 = rt::get_num_interop_threads()). Output is
  // bit-identical to forward() for any thread count; see
  // core/parallel_executor.h. Auto-recompiles on first call. Repeated
  // callers should hold a ParallelExecutor instead (this convenience
  // rebuilds the schedule per call).
  Value forward_parallel(const std::vector<Value>& inputs,
                         int num_threads = 0);

  // Tensor-in / tensor-out convenience for tests and benches.
  Tensor run(const std::vector<Tensor>& inputs);
  Tensor run(const Tensor& input) { return run(std::vector<Tensor>{input}); }
  Tensor run_parallel(const std::vector<Tensor>& inputs, int num_threads = 0);
  Tensor run_parallel(const Tensor& input, int num_threads = 0) {
    return run_parallel(std::vector<Tensor>{input}, num_threads);
  }

  // --- memory planning (computed by passes/memory_planner) --------------
  // A TapePlan maps each instruction's output to a slot in one pre-sized
  // arena; planned runs reuse the arena run-to-run instead of re-allocating
  // every intermediate. Install via passes::compile_planned(), which also
  // attaches a guard-keyed PlanCache (core/plan_cache.h) and a replanner,
  // so mixed-shape traffic plans each distinct input signature once and
  // every later arrival of that signature runs with zero planning work.

  // Installs `plan` and allocates a fresh arena sized plan->arena_bytes.
  // Thread-safe: the (plan, arena) pair is published atomically — a reader
  // never observes a plan without its matching arena.
  void install_plan(std::shared_ptr<const TapePlan> plan);
  std::shared_ptr<const TapePlan> plan() const;
  bool has_plan() const { return plan() != nullptr; }
  // Drops the plan and its arena (the replanner and plan cache, if any,
  // survive — the next run_planned rebuilds a plan from the actual inputs).
  void clear_plan();

  // Called by run_planned when the inputs violate the current plan's
  // contract (or no plan is installed); expected to install_plan() a plan
  // matching `inputs`. Set by passes::compile_planned. Invocations are
  // serialized by the module (replanning mutates graph meta).
  using Replanner =
      std::function<void(GraphModule&, const std::vector<RtValue>&)>;
  void set_replanner(Replanner r) { replanner_ = std::move(r); }

  // Multi-plan cache: when attached (passes::compile_planned does), the
  // planned entry points key runs by input-shape signature — a hit reuses
  // the cached specialized plan and a pooled arena (zero planning work), a
  // miss plans once via the replanner and inserts. Evicted entries stay
  // alive for threads still running them (shared_ptr-held).
  void set_plan_cache(std::shared_ptr<PlanCache> cache);
  std::shared_ptr<PlanCache> plan_cache() const;

  // Execute the tape into a planned arena. Inputs that miss the plan cache
  // (or violate a cacheless module's installed contract) trigger the
  // replanner; with no replanner (or one that could not produce a plan) the
  // run transparently falls back to the unplanned tape — planned execution
  // is an optimization, not a new failure mode. With a plan cache attached
  // this is thread-safe for concurrent callers of any shape mix (each run
  // leases its own arena); without one, concurrent callers must use
  // distinct shapes or give each thread its own module.
  std::vector<RtValue> run_planned(std::vector<RtValue> inputs,
                                   ExecHooks* hooks = nullptr);
  Tensor run_planned(const Tensor& input);

  // Dynamic-batching entry (the serving layer's hot path): concatenate
  // `rows` — per-request tensors that must agree on dtype and every dim but
  // dim 0 — along dim 0, execute ONE planned run over the combined batch,
  // and split the batched output back into one contiguous per-request tensor
  // (row-count-preserving graphs only: the single tensor output's dim 0 must
  // equal the summed input rows, else ExecError{NodeFailure} — callers
  // degrade to per-request runs). Outputs are cloned out of the batch so a
  // response never aliases arena or batch memory. Row-independent kernels
  // (elementwise chains, GEMM over rows) make each split bit-identical to
  // running that row alone.
  std::vector<Tensor> run_planned_batched(const std::vector<Tensor>& rows,
                                          ExecHooks* hooks = nullptr);

  // Planned + inter-op parallel convenience: validates/re-plans, then runs
  // a plan-aware ParallelExecutor (rebuilt per call, like forward_parallel).
  std::vector<RtValue> run_planned_parallel(std::vector<RtValue> inputs,
                                            int num_threads = 0);

  // --- input guards (resilience) ----------------------------------------
  // GuardSpecs are generated from traced shape/dtype meta by
  // resilience::generate_guards and validated at entry by run_resilient (or
  // explicitly via check_guards_strict / resilience::check_inputs). Graph
  // transforms that invalidate shape meta leave guards stale; the verifier
  // rule `guards.coverage` flags that.
  void set_guards(std::vector<GuardSpec> guards) {
    guards_ = std::move(guards);
  }
  const std::vector<GuardSpec>& guards() const { return guards_; }
  void clear_guards() { guards_.clear(); }

  // Hardened entry point: optionally checks guards, then walks the engine
  // fallback ladder (parallel -> serial tape -> Interpreter, each rung
  // gated by `opts`), retrying on the next engine when a rung fails with an
  // engine-local error. Input-shaped errors (arity, guard violations) are
  // rethrown immediately — no engine can repair the caller's inputs. When
  // every rung fails, the last failure is rethrown. `report`, if non-null,
  // receives one EngineAttempt per rung tried.
  std::vector<RtValue> run_resilient(std::vector<RtValue> inputs,
                                     const ResilientOptions& opts = {},
                                     ResilientReport* report = nullptr);
  Tensor run_resilient(const Tensor& input, const ResilientOptions& opts = {},
                       ResilientReport* report = nullptr);

  // Delegated state lookup: searches this module's own children first, then
  // the root hierarchy (so targets recorded during tracing resolve).
  nn::Module::Ptr resolve_module(const std::string& qualname) const;
  Tensor resolve_attr(const std::string& qualname) const;

  // Module-hierarchy lookups delegate to the root so a GraphModule behaves
  // like the module it was traced from (needed for re-tracing and nesting).
  nn::Module::Ptr get_submodule(const std::string& qualname) const override;
  Tensor get_parameter(const std::string& qualname) const override;

  // Dump the generated code and graph listing to a directory
  // (GraphModule.to_folder in the paper, Section 5.4).
  void to_folder(const std::string& dir) const;

 private:
  // Cache path of run_planned: lookup -> (miss: plan once under replan_mu_,
  // insert) -> lease an arena -> execute. Returns false when no cache is
  // attached or no plan could be produced (caller falls back).
  bool run_planned_cached(const std::vector<RtValue>& inputs,
                          std::shared_ptr<const TapePlan>* plan_out,
                          std::shared_ptr<PlanCacheEntry>* entry_out);
  // Miss path: double-checked peek, then plan at the signature's canonical
  // shapes (replanner) and insert. Serialized by replan_mu_ because
  // replanning runs ShapeProp, which writes node meta.
  std::shared_ptr<PlanCacheEntry> replan_into_cache(
      const std::vector<RtValue>& inputs);

  nn::Module::Ptr root_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<CompiledGraph> compiled_;
  std::string code_;
  std::vector<GuardSpec> guards_;
  // plan_mu_ guards publication of (plan_, arena_) and plan_cache_; a
  // reader always sees a plan together with the arena sized for it (the PR 5
  // half-initialized-plan race). replan_mu_ serializes planning work and is
  // only ever taken before plan_mu_, never after.
  mutable std::mutex plan_mu_;
  std::mutex replan_mu_;
  std::shared_ptr<const TapePlan> plan_;
  std::shared_ptr<MemoryArena> arena_;
  std::shared_ptr<PlanCache> plan_cache_;
  Replanner replanner_;
};

// Validate `inputs` against the module's GuardSpecs (strict mode): arity
// first (shared with the engines' own check), then per-placeholder shape and
// dtype. Throws ExecError{GuardViolation} naming the violating placeholder,
// its expected spec, and what arrived. A module with no guards passes
// trivially. The permissive variant (re-run ShapeProp and regenerate) lives
// in resilience::check_inputs, which layers on passes.
void check_guards_strict(const GraphModule& gm,
                         const std::vector<RtValue>& inputs);

}  // namespace fxcpp::fx
