// Operator registry — maps the string `target` of call_function /
// call_method Nodes to executable kernels.
//
// This plays the role Python name resolution plays for torch.fx's generated
// code: when a GraphModule is recompiled, targets are resolved here once and
// the execution tape holds direct OpInfo pointers (no per-call lookup),
// while the Interpreter resolves per node (the measured gap is the
// dispatch-overhead ablation bench).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rt_value.h"

namespace fxcpp::fx {

struct OpInfo {
  std::string name;
  // Positional parameter names, used to merge kwargs into positional slots
  // at compile/interpret time. (The IR itself stores args exactly as the
  // user wrote them — normalization happens at execution, per footnote 1.)
  std::vector<std::string> param_names;
  // Execute with fully positional arguments (missing trailing optionals are
  // monostate).
  std::function<RtValue(const std::vector<RtValue>&)> run;
  // --- memory-planner traits ------------------------------------------
  // The kernel's result tensor is freshly allocated and never aliases an
  // input — its output may safely be served from a planned arena slot.
  bool fresh_output = false;
  // The kernel is an index-aligned elementwise map (it reads in[i] before
  // writing out[i] for every i), so when a same-shaped input dies at this
  // instruction the planner may give output and input the same arena slot.
  bool can_alias = false;
  // --- analysis traits --------------------------------------------------
  // The kernel is a pure function of its arguments (no RNG, no hidden
  // state): equal inputs give bit-equal outputs. Drives the constness
  // analysis (dataflow) and constant folding; dropout is the counterexample.
  bool pure = true;
};

class OpRegistry {
 public:
  // call_function targets (free functions: relu, conv2d, add, ...).
  static OpRegistry& functions();
  // call_method targets (methods on args[0]: neg, reshape, flatten, ...).
  static OpRegistry& methods();

  void add(OpInfo info);
  // Set the memory-planner traits on an already-registered op. Throws
  // std::out_of_range if the op is unknown (an annotation that silently
  // misses would leave a kernel unplanned or, worse, wrongly aliasable).
  void annotate(const std::string& name, bool fresh_output, bool can_alias);
  // Set the purity trait (see OpInfo::pure); same throwing contract.
  void annotate_pure(const std::string& name, bool pure);
  const OpInfo* find(const std::string& name) const;
  // Throws std::out_of_range naming the missing target.
  const OpInfo& at(const std::string& name) const;

 private:
  std::unordered_map<std::string, OpInfo> ops_;
};

// Merge args/kwargs into a positional vector following `info.param_names`.
// `args` occupy the leading slots; each kwarg is placed by name.
std::vector<RtValue> merge_kwargs(const OpInfo& info, std::vector<RtValue> args,
                                  const std::vector<std::pair<std::string, RtValue>>& kwargs);

}  // namespace fxcpp::fx
