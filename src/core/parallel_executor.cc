#include "core/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <variant>

#include "core/exec_hooks.h"
#include "core/memory_plan.h"
#include "resilience/exec_error.h"
#include "runtime/timer.h"

namespace fxcpp::fx {

namespace {

void collect_reg_reads(const Instr::ArgExpr& e, std::vector<int>& out) {
  using Kind = Instr::ArgExpr::Kind;
  switch (e.kind) {
    case Kind::Reg:
      out.push_back(e.reg);
      break;
    case Kind::List:
      for (const auto& item : e.items) collect_reg_reads(item, out);
      break;
    case Kind::Imm:
      break;
  }
}

}  // namespace

Schedule build_schedule(const CompiledGraph& cg) {
  const auto& instrs = cg.instrs();
  const std::size_t n = instrs.size();
  Schedule s;
  s.dep_count.assign(n, 0);
  s.succs.assign(n, {});
  s.reads.assign(n, {});
  s.reg_reads.assign(static_cast<std::size_t>(cg.num_registers()), 0);

  // Single writer per register; producer[r] = instruction index or -1 for
  // placeholder registers (filled before execution starts).
  std::vector<int> producer(static_cast<std::size_t>(cg.num_registers()), -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (instrs[i].out_reg >= 0) {
      producer[static_cast<std::size_t>(instrs[i].out_reg)] =
          static_cast<int>(i);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<int> regs;
    for (const auto& a : instrs[i].args) collect_reg_reads(a, regs);
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    for (int r : regs) {
      ++s.reg_reads[static_cast<std::size_t>(r)];
      const int p = producer[static_cast<std::size_t>(r)];
      if (p >= 0) {
        // Dedupe edges from the same producer (an instr may read two
        // registers written by one producer only via distinct regs, but a
        // multi-arg read of the same reg was already deduped above).
        auto& edges = s.succs[static_cast<std::size_t>(p)];
        if (std::find(edges.begin(), edges.end(), static_cast<int>(i)) ==
            edges.end()) {
          edges.push_back(static_cast<int>(i));
          ++s.dep_count[i];
        }
      }
    }
    s.reads[i] = std::move(regs);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (s.dep_count[i] == 0) s.initial_ready.push_back(static_cast<int>(i));
  }
  return s;
}

Schedule build_planned_schedule(const CompiledGraph& cg,
                                const TapePlan& plan) {
  Schedule s = build_schedule(cg);
  const std::size_t n = cg.instrs().size();
  auto add_edge = [&s](int from, int to) {
    if (from == to || from < 0 || to < 0) return;
    auto& edges = s.succs[static_cast<std::size_t>(from)];
    if (std::find(edges.begin(), edges.end(), to) != edges.end()) return;
    edges.push_back(to);
    ++s.dep_count[static_cast<std::size_t>(to)];
  };
  // Anti-dependency (WAR) edges between planned intervals whose arena byte
  // ranges overlap. First-fit only reuses a slot after its previous owner's
  // last read (and an in-place interval dies exactly at its aliasing
  // instruction), so every edge points forward in tape order — the
  // augmented graph stays acyclic.
  for (std::size_t i = 0; i < n && i < plan.intervals.size(); ++i) {
    const PlanInterval& a = plan.intervals[i];
    if (!a.planned) continue;
    for (std::size_t j = i + 1; j < n && j < plan.intervals.size(); ++j) {
      const PlanInterval& b = plan.intervals[j];
      if (!b.planned) continue;
      const bool overlap = a.offset < b.offset + b.padded &&
                           b.offset < a.offset + a.padded;
      if (!overlap) continue;
      add_edge(static_cast<int>(i), static_cast<int>(j));
      for (int r : a.readers) add_edge(r, static_cast<int>(j));
    }
  }
  s.initial_ready.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (s.dep_count[i] == 0) s.initial_ready.push_back(static_cast<int>(i));
  }
  return s;
}

ParallelExecutor::ParallelExecutor(GraphModule& gm, ExecutorOptions opts)
    : gm_(gm), opts_(opts) {
  if (!gm_.compiled()) gm_.recompile();
  if (opts_.use_plan && opts_.plan) {
    plan_ = opts_.plan;
    plan_is_explicit_ = true;
  } else if (opts_.use_plan) {
    plan_ = gm_.plan();
  }
  if (plan_) {
    arena_ = std::make_shared<MemoryArena>(plan_->arena_bytes);
    schedule_ = build_planned_schedule(gm_.compiled_graph(), *plan_);
  } else {
    schedule_ = build_schedule(gm_.compiled_graph());
  }
  int threads = opts_.num_threads;
  if (threads <= 0) threads = rt::get_num_interop_threads();
  pool_ = std::make_unique<rt::ThreadPool>(threads);
}

std::vector<RtValue> ParallelExecutor::run(std::vector<RtValue> inputs) {
  const CompiledGraph& cg = gm_.compiled_graph();
  const auto& instrs = cg.instrs();
  if (inputs.size() != cg.input_regs().size()) {
    throw arity_error(cg.input_regs().size(), inputs.size())
        .with_engine(Engine::Parallel);
  }
  if (opts_.cancel && opts_.cancel->load(std::memory_order_relaxed)) {
    throw ExecError(ErrorCode::Cancelled,
                    "cancellation requested before execution started")
        .with_engine(Engine::Parallel);
  }
  // An explicit (cache-supplied) plan skips the contract check: the plan
  // cache matched these inputs by signature, and off-contract in-bucket
  // shapes degrade to heap allocation rather than corrupting (exact-size
  // placement adoption, core/memory_plan.h).
  if (plan_ && !plan_is_explicit_ && !plan_matches_inputs(*plan_, inputs)) {
    throw ExecError(ErrorCode::GuardViolation,
                    "inputs violate the memory plan's shape/dtype contract; "
                    "this executor is shape-specialized — re-plan via "
                    "GraphModule::run_planned_parallel or rebuild it")
        .with_engine(Engine::Parallel);
  }
  std::byte* const arena_base = arena_ ? arena_->base() : nullptr;

  rt::Timer total;
  stats_ = ExecutorStats{};

  std::vector<RtValue> regs(static_cast<std::size_t>(cg.num_registers()));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    regs[static_cast<std::size_t>(cg.input_regs()[i])] = std::move(inputs[i]);
  }
  std::vector<RtValue> result(1);  // single Output instr writes slot 0
  bool has_output = false;
  for (const auto& ins : instrs) has_output |= ins.op == Opcode::Output;

  // Per-run mutable copies of the dependency/refcount state. acq_rel on the
  // decrements gives the completion edge: the producer's register write
  // happens-before any successor it unblocks.
  const std::size_t n = instrs.size();
  std::vector<std::atomic<int>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    deps[i].store(schedule_.dep_count[i], std::memory_order_relaxed);
  }
  std::vector<std::atomic<int>> reg_left(schedule_.reg_reads.size());
  for (std::size_t r = 0; r < schedule_.reg_reads.size(); ++r) {
    reg_left[r].store(schedule_.reg_reads[r], std::memory_order_relaxed);
  }

  // `aborted` is ONLY ever set by cancellation / deadline expiry on the
  // main thread. Node failures deliberately do NOT set it: independent work
  // keeps draining, and only the failed node's successor chains are pruned
  // (by not spawning them). That is what makes the rethrown error
  // deterministic — the earliest-in-tape-order failure always executes
  // (its ancestors are exactly the instructions the serial tape would have
  // run before it, and those all succeed), so taking the minimum failing
  // index reproduces the serial engine's failure for any thread count.
  std::atomic<bool> aborted{false};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  int err_idx = -1;                // guarded by err_mu
  std::exception_ptr err;          // guarded by err_mu
  std::atomic<int> running{0}, queued{0};
  std::atomic<int> max_running{0}, max_queued{0};
  std::atomic<std::uint64_t> executed{0};
  std::mutex stats_mu;

  auto bump_max = [](std::atomic<int>& mx, int v) {
    int cur = mx.load(std::memory_order_relaxed);
    while (v > cur &&
           !mx.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  };

  rt::TaskGroup group(*pool_);

  // Spawn-from-worker recursion: executing an instruction decrements its
  // successors' counts and schedules any that hit zero.
  std::function<void(int)> spawn = [&](int idx) {
    if (opts_.collect_stats) bump_max(max_queued, queued.fetch_add(1) + 1);
    group.run([&, idx] {
      if (aborted.load(std::memory_order_relaxed)) return;
      const Instr& ins = instrs[static_cast<std::size_t>(idx)];
      int now = 0;
      rt::Timer t;
      if (opts_.collect_stats) {
        queued.fetch_sub(1);
        now = running.fetch_add(1) + 1;
        bump_max(max_running, now);
      }
      RtValue out;
      try {
        if (opts_.hooks && ins.node) opts_.hooks->on_node_begin(*ins.node);
        if (plan_ && arena_base &&
            static_cast<std::size_t>(idx) < plan_->intervals.size() &&
            plan_->intervals[static_cast<std::size_t>(idx)].planned) {
          const PlanInterval& iv =
              plan_->intervals[static_cast<std::size_t>(idx)];
          // Arm this worker's placement hint with the instruction's arena
          // slot; the anti-dependency edges guarantee the slot's previous
          // owner (and all its readers) already finished.
          PlacementGuard slot(arena_base + iv.offset, iv.nbytes);
          out = CompiledGraph::exec_instr(ins, regs);
        } else {
          out = CompiledGraph::exec_instr(ins, regs);
        }
        if (opts_.hooks && ins.node) {
          opts_.hooks->on_node_output(*ins.node, out);
          opts_.hooks->on_node_end(*ins.node, out);
        }
      } catch (...) {
        // Keep the schedule-order-earliest failure; successors of this
        // instruction are pruned by returning before the spawn loop.
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (err_idx < 0 || idx < err_idx) {
            err_idx = idx;
            err = std::current_exception();
          }
        }
        failed.store(true, std::memory_order_relaxed);
        if (opts_.collect_stats) running.fetch_sub(1);
        return;
      }
      if (ins.op == Opcode::Output) {
        result[0] = std::move(out);
      } else if (ins.out_reg >= 0) {
        regs[static_cast<std::size_t>(ins.out_reg)] = std::move(out);
      }
      if (opts_.collect_stats) {
        running.fetch_sub(1);
        std::lock_guard<std::mutex> lock(stats_mu);
        stats_.nodes.push_back({ins.node, t.seconds()});
      }
      executed.fetch_add(1, std::memory_order_relaxed);
      // Reference-counted frees: the last reader of a register clears it
      // (the parallel analog of Instr::frees).
      for (int r : schedule_.reads[static_cast<std::size_t>(idx)]) {
        if (reg_left[static_cast<std::size_t>(r)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          regs[static_cast<std::size_t>(r)] = RtValue();
        }
      }
      for (int succ : schedule_.succs[static_cast<std::size_t>(idx)]) {
        if (deps[static_cast<std::size_t>(succ)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          spawn(succ);
        }
      }
    });
  };

  const bool watched = opts_.cancel != nullptr || opts_.deadline_seconds > 0.0;
  ErrorCode abort_code = ErrorCode::Unknown;  // main thread only
  if (opts_.hooks) opts_.hooks->on_run_begin(n);
  try {
    for (int idx : schedule_.initial_ready) spawn(idx);
    if (!watched) {
      group.wait();
    } else {
      // Poll the cancel token / deadline while the schedule drains. Once
      // `aborted` is set, not-yet-started tasks return immediately and the
      // group quiesces after at most the in-flight kernels.
      while (!group.wait_for(std::chrono::milliseconds(1))) {
        if (aborted.load(std::memory_order_relaxed)) continue;
        if (opts_.cancel && opts_.cancel->load(std::memory_order_relaxed)) {
          abort_code = ErrorCode::Cancelled;
          aborted.store(true, std::memory_order_relaxed);
        } else if (opts_.deadline_seconds > 0.0 &&
                   total.seconds() > opts_.deadline_seconds) {
          abort_code = ErrorCode::DeadlineExceeded;
          aborted.store(true, std::memory_order_relaxed);
        }
      }
    }
  } catch (...) {
    // on_run_end fires even for aborted runs (hook contract): observers
    // close their run-level bookkeeping before the exception propagates.
    if (opts_.hooks) opts_.hooks->on_run_end();
    throw;
  }
  if (opts_.hooks) opts_.hooks->on_run_end();

  stats_.nodes_executed =
      static_cast<std::size_t>(executed.load(std::memory_order_relaxed));
  stats_.max_concurrency = max_running.load();
  stats_.max_ready_queue = max_queued.load();
  stats_.total_seconds = total.seconds();

  if (failed.load(std::memory_order_relaxed)) {
    // Quiesced: regs is single-threaded again, safe to snapshot for the
    // error's partial-environment payload.
    std::vector<std::string> live;
    for (std::size_t i = 0; i < cg.input_nodes().size(); ++i) {
      if (cg.input_nodes()[i] &&
          !std::holds_alternative<std::monostate>(
              regs[static_cast<std::size_t>(cg.input_regs()[i])])) {
        live.push_back(cg.input_nodes()[i]->name());
      }
    }
    for (const Instr& li : instrs) {
      if (li.out_reg >= 0 && li.node &&
          !std::holds_alternative<std::monostate>(
              regs[static_cast<std::size_t>(li.out_reg)])) {
        live.push_back(li.node->name());
      }
    }
    const Node* at = instrs[static_cast<std::size_t>(err_idx)].node;
    try {
      std::rethrow_exception(err);
    } catch (...) {
      rethrow_annotated(at, Engine::Parallel, std::move(live));
    }
  }
  if (abort_code != ErrorCode::Unknown) {
    const std::size_t done = stats_.nodes_executed;
    throw ExecError(abort_code,
                    (abort_code == ErrorCode::Cancelled
                         ? std::string("cancelled after ")
                         : "deadline of " +
                               std::to_string(opts_.deadline_seconds) +
                               "s exceeded after ") +
                        std::to_string(done) + " of " + std::to_string(n) +
                        " instructions")
        .with_engine(Engine::Parallel);
  }
  if (stats_.nodes_executed != n) {
    throw ExecError(ErrorCode::ScheduleError,
                    "schedule executed " +
                        std::to_string(stats_.nodes_executed) + " of " +
                        std::to_string(n) +
                        " instructions (cyclic or disconnected schedule)")
        .with_engine(Engine::Parallel);
  }
  if (!has_output) return {};
  std::vector<RtValue> out;
  out.push_back(std::move(result[0]));
  return out;
}

}  // namespace fxcpp::fx
