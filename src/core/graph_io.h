// Graph serialization — a plain-text round-trippable encoding of the IR.
//
// The paper situates fx among systems that capture "a free-standing
// representation of the whole program for the purposes of serialization or
// export" (Section 1); fx itself pickles GraphModules. Here the 6-opcode IR
// serializes to a line-oriented text form (one node per line, arguments in
// a parseable subset of the Figure-1 rendering) and parses back, enabling
// save/transform/reload workflows and golden files.
#pragma once

#include <memory>
#include <string>

#include "core/graph.h"

namespace fxcpp::fx {

// One line per node:
//   name = opcode target=<target> args=(...) kwargs={k: v, ...}
// Arguments: node names, None, True/False, ints, floats (with '.' or 'e'),
// 'strings', and [lists].
std::string serialize_graph(const Graph& g);

// Parse the serialize_graph() format. Throws std::invalid_argument with a
// line number on malformed input.
std::unique_ptr<Graph> parse_graph(const std::string& text);

}  // namespace fxcpp::fx
