#include "core/tracer.h"

#include <stdexcept>

#include "core/graph_module.h"

namespace fxcpp::fx {

namespace {

thread_local std::vector<Tracer*> g_active_tracers;

// RAII activation of a tracer for the duration of a trace.
struct ActiveGuard {
  explicit ActiveGuard(Tracer* t) { g_active_tracers.push_back(t); }
  ~ActiveGuard() { g_active_tracers.pop_back(); }
  ActiveGuard(const ActiveGuard&) = delete;
  ActiveGuard& operator=(const ActiveGuard&) = delete;
};

// Root holder for traced free functions: carries constants registered by
// create_arg but is never executed.
class FunctionRoot : public nn::Module {
 public:
  FunctionRoot() : nn::Module("TracedFunctionRoot") {}
  Value forward(const std::vector<Value>&) override {
    throw std::logic_error("FunctionRoot::forward should never run");
  }
};

// Convert an inlined-graph result Argument back into a traced Value.
Value argument_to_value(const Argument& a, Tracer* t) {
  if (a.is_node()) return Value(Proxy{a.node(), t});
  if (a.is_list()) {
    std::vector<Value> items;
    items.reserve(a.list().size());
    for (const auto& item : a.list()) items.push_back(argument_to_value(item, t));
    return Value(std::move(items));
  }
  throw std::logic_error("cannot convert immediate argument back to Value");
}

}  // namespace

Tracer* Tracer::active() {
  return g_active_tracers.empty() ? nullptr : g_active_tracers.back();
}

Tracer::Scope::Scope(Tracer& t) { g_active_tracers.push_back(&t); }
Tracer::Scope::~Scope() { g_active_tracers.pop_back(); }

void Tracer::start(nn::Module::Ptr root) {
  graph_ = std::make_unique<Graph>();
  paths_.clear();
  next_const_ = 0;
  root_ = std::move(root);
  if (root_) {
    for (const auto& [name, child] : root_->children()) {
      register_hierarchy(child, name);
    }
    paths_.emplace(root_.get(), "");
  }
}

std::unique_ptr<Graph> Tracer::finish_graph() {
  paths_.clear();
  root_.reset();
  return std::move(graph_);
}

void Tracer::register_hierarchy(const nn::Module::Ptr& m,
                                const std::string& prefix) {
  paths_.emplace(m.get(), prefix);
  for (const auto& [name, child] : m->children()) {
    register_hierarchy(child, prefix.empty() ? name : prefix + "." + name);
  }
}

bool Tracer::is_leaf_module(const nn::Module& m,
                            const std::string& /*qualname*/) const {
  return m.is_builtin() && dynamic_cast<const GraphModule*>(&m) == nullptr;
}

Node* Tracer::create_node(Opcode op, const std::string& target,
                          std::vector<Argument> args, Kwargs kwargs,
                          const std::string& name_hint) {
  return graph_->create_node(op, target, std::move(args), std::move(kwargs),
                             name_hint);
}

Proxy Tracer::create_proxy(Opcode op, const std::string& target,
                           std::vector<Argument> args, Kwargs kwargs,
                           const std::string& name_hint) {
  Node* n = create_node(op, target, std::move(args), std::move(kwargs),
                        name_hint);
  return Proxy{n, this};
}

Argument Tracer::create_arg(const Value& v) {
  if (!v.defined()) return Argument();
  if (v.is_proxy()) {
    const Proxy p = v.proxy();
    if (p.tracer != this) {
      throw TraceError("Proxy '" + p.node->name() +
                       "' belongs to a different Tracer");
    }
    return Argument(p.node);
  }
  if (v.is_tuple()) {
    Argument::List items;
    items.reserve(v.tuple().size());
    for (const auto& item : v.tuple()) items.push_back(create_arg(item));
    return Argument(std::move(items));
  }
  // Concrete tensor captured inside a traced region: register it as a
  // constant attribute on the root and reference it via get_attr (exactly
  // fx's _tensor_constant mechanism).
  const std::string name = "_tensor_constant" + std::to_string(next_const_++);
  root_->register_buffer(name, v.tensor());
  return Argument(create_node(Opcode::GetAttr, name, {}, {}, name));
}

bool Tracer::is_tracing_module(const nn::Module& m) const {
  return paths_.count(&m) != 0;
}

const std::string& Tracer::qualname_of(const nn::Module& m) const {
  auto it = paths_.find(&m);
  if (it == paths_.end()) {
    throw std::logic_error("module '" + m.kind() +
                           "' is not part of the traced hierarchy");
  }
  return it->second;
}

Value Tracer::module_call(nn::Module& m, const std::vector<Value>& inputs) {
  const std::string& qual = qualname_of(m);
  // GraphModules are generated code: re-tracing them inlines their graph
  // (Figure 3 — the result of a transform is traced again).
  if (auto* gm = dynamic_cast<GraphModule*>(&m)) {
    std::vector<Argument> args;
    args.reserve(inputs.size());
    for (const auto& v : inputs) args.push_back(create_arg(v));
    return argument_to_value(graph_->inline_graph(gm->graph(), args), this);
  }
  if (is_leaf_module(m, qual)) {
    std::vector<Argument> args;
    args.reserve(inputs.size());
    for (const auto& v : inputs) args.push_back(create_arg(v));
    return Value(create_proxy(Opcode::CallModule, qual, std::move(args), {},
                              qual));
  }
  return m.forward(inputs);
}

Value Tracer::attr_value(const nn::Module& m, const std::string& attr_name) {
  const std::string& qual = qualname_of(m);
  const std::string target = qual.empty() ? attr_name : qual + "." + attr_name;
  return Value(create_proxy(Opcode::GetAttr, target, {}, {}, target));
}

std::shared_ptr<GraphModule> Tracer::finish(nn::Module::Ptr root,
                                            const std::string& name) {
  auto gm = std::make_shared<GraphModule>(std::move(root), std::move(graph_),
                                          name);
  gm->recompile();
  paths_.clear();
  root_.reset();
  return gm;
}

std::shared_ptr<GraphModule> Tracer::trace(
    nn::Module::Ptr root, const std::vector<std::string>& input_names) {
  graph_ = std::make_unique<Graph>();
  root_ = root;
  paths_.clear();
  next_const_ = 0;
  for (const auto& [name, child] : root->children()) {
    register_hierarchy(child, name);
  }
  // The root maps to the empty path for attr_value() but is not intercepted
  // (trace() invokes its forward directly below).
  paths_.emplace(root.get(), "");

  ActiveGuard guard(this);
  std::vector<Value> inputs;
  inputs.reserve(input_names.size());
  for (const auto& name : input_names) {
    inputs.emplace_back(create_proxy(Opcode::Placeholder, name, {}, {}, name));
  }
  // If the root is itself generated code, inline it rather than executing it.
  Value out;
  if (auto* gm = dynamic_cast<GraphModule*>(root.get())) {
    std::vector<Argument> args;
    args.reserve(inputs.size());
    for (const auto& v : inputs) args.push_back(create_arg(v));
    out = argument_to_value(graph_->inline_graph(gm->graph(), args), this);
  } else {
    // Intercept submodule calls but run the root's own forward directly.
    out = root->forward(inputs);
  }
  graph_->output(create_arg(out));
  return finish(root, root->kind());
}

std::shared_ptr<GraphModule> Tracer::trace_function(
    const std::function<Value(const std::vector<Value>&)>& fn,
    const std::vector<std::string>& input_names) {
  graph_ = std::make_unique<Graph>();
  root_ = std::make_shared<FunctionRoot>();
  paths_.clear();
  paths_.emplace(root_.get(), "");
  next_const_ = 0;

  ActiveGuard guard(this);
  std::vector<Value> inputs;
  inputs.reserve(input_names.size());
  for (const auto& name : input_names) {
    inputs.emplace_back(create_proxy(Opcode::Placeholder, name, {}, {}, name));
  }
  Value out = fn(inputs);
  graph_->output(create_arg(out));
  return finish(root_, "GraphModule");
}

std::shared_ptr<GraphModule> symbolic_trace(
    nn::Module::Ptr root, const std::vector<std::string>& input_names) {
  Tracer t;
  return t.trace(std::move(root), input_names);
}

std::shared_ptr<GraphModule> symbolic_trace(
    const std::function<Value(const std::vector<Value>&)>& fn,
    const std::vector<std::string>& input_names) {
  Tracer t;
  return t.trace_function(fn, input_names);
}

std::shared_ptr<GraphModule> symbolic_trace(
    const std::function<Value(Value)>& fn, const std::string& input_name) {
  Tracer t;
  return t.trace_function(
      [&fn](const std::vector<Value>& inputs) { return fn(inputs.at(0)); },
      {input_name});
}

}  // namespace fxcpp::fx
