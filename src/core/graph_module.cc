#include "core/graph_module.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/codegen.h"
#include "core/exec_hooks.h"
#include "core/functional.h"
#include "core/graph_io.h"
#include "core/interpreter.h"
#include "core/memory_plan.h"
#include "core/parallel_executor.h"
#include "core/plan_cache.h"
#include "tensor/ops.h"

namespace fxcpp::fx {

namespace {

RtValue value_to_rt(const Value& v) {
  if (v.is_tensor()) return v.tensor();
  if (v.is_tuple()) {
    std::vector<Tensor> ts;
    ts.reserve(v.tuple().size());
    for (const auto& item : v.tuple()) ts.push_back(item.tensor());
    return ts;
  }
  if (!v.defined()) return RtValue();
  throw std::logic_error("cannot lower Value (Proxy?) to a runtime value");
}

Value rt_to_value(RtValue v) {
  if (rt_is_tensor(v)) return Value(std::move(std::get<Tensor>(v)));
  if (std::holds_alternative<std::vector<Tensor>>(v)) {
    std::vector<Value> items;
    for (auto& t : std::get<std::vector<Tensor>>(v)) {
      items.emplace_back(std::move(t));
    }
    return Value(std::move(items));
  }
  if (std::holds_alternative<std::monostate>(v)) return Value();
  throw std::logic_error("graph produced a non-tensor output");
}

}  // namespace

// ---------------------------------------------------------------------------
// CompiledGraph
// ---------------------------------------------------------------------------

namespace {

RtValue eval_arg_expr(const Instr::ArgExpr& e, std::vector<RtValue>& regs) {
  using Kind = Instr::ArgExpr::Kind;
  switch (e.kind) {
    case Kind::Reg:
      return regs[static_cast<std::size_t>(e.reg)];
    case Kind::Imm:
      return e.imm;
    case Kind::List: {
      // all_int seeded true: an empty list is an empty int list, consistent
      // with Interpreter::eval_arg and recompile()'s immediate pre-decode.
      bool all_tensor = !e.items.empty();
      bool all_int = true;
      std::vector<RtValue> vals;
      vals.reserve(e.items.size());
      for (const auto& item : e.items) {
        vals.push_back(eval_arg_expr(item, regs));
        all_tensor = all_tensor && rt_is_tensor(vals.back());
        all_int = all_int && std::holds_alternative<std::int64_t>(vals.back());
      }
      if (all_tensor) {
        std::vector<Tensor> ts;
        ts.reserve(vals.size());
        for (auto& v : vals) ts.push_back(std::move(std::get<Tensor>(v)));
        return ts;
      }
      if (all_int) {
        std::vector<std::int64_t> is;
        is.reserve(vals.size());
        for (auto& v : vals) is.push_back(std::get<std::int64_t>(v));
        return is;
      }
      throw std::logic_error("heterogeneous list argument at runtime");
    }
  }
  return RtValue();
}

}  // namespace

RtValue CompiledGraph::exec_instr(const Instr& ins, std::vector<RtValue>& regs) {
  switch (ins.op) {
    case Opcode::CallFunction:
    case Opcode::CallMethod: {
      std::vector<RtValue> args;
      args.reserve(ins.args.size());
      for (const auto& a : ins.args) args.push_back(eval_arg_expr(a, regs));
      return ins.fn->run(args);
    }
    case Opcode::CallModule: {
      std::vector<Value> args;
      args.reserve(ins.args.size());
      for (const auto& a : ins.args) {
        args.push_back(rt_to_value(eval_arg_expr(a, regs)));
      }
      return value_to_rt((*ins.module)(std::move(args)));
    }
    case Opcode::GetAttr:
      return ins.attr;
    case Opcode::Output:
      return eval_arg_expr(ins.args.at(0), regs);
    case Opcode::Placeholder:
      break;
  }
  return RtValue();
}

namespace {

// Names of registers still holding values, in tape (= graph) order — the
// partial environment snapshot an ExecError carries out of a failed run.
std::vector<std::string> live_register_names(
    const std::vector<const Node*>& input_nodes,
    const std::vector<int>& input_regs, const std::vector<Instr>& instrs,
    const std::vector<RtValue>& regs) {
  std::vector<std::string> live;
  for (std::size_t i = 0; i < input_nodes.size() && i < input_regs.size();
       ++i) {
    if (input_nodes[i] &&
        !std::holds_alternative<std::monostate>(
            regs[static_cast<std::size_t>(input_regs[i])])) {
      live.push_back(input_nodes[i]->name());
    }
  }
  for (const Instr& ins : instrs) {
    if (ins.out_reg >= 0 && ins.node &&
        !std::holds_alternative<std::monostate>(
            regs[static_cast<std::size_t>(ins.out_reg)])) {
      live.push_back(ins.node->name());
    }
  }
  return live;
}

}  // namespace

namespace {

// Run one instruction with its arena slot armed (planned) or plainly.
// Shared by the serial tape loop below and the ParallelExecutor's workers.
RtValue exec_instr_planned(const Instr& ins, std::vector<RtValue>& regs,
                           const TapePlan* plan, std::size_t idx,
                           std::byte* arena_base) {
  if (plan && arena_base && idx < plan->intervals.size() &&
      plan->intervals[idx].planned) {
    const PlanInterval& iv = plan->intervals[idx];
    PlacementGuard slot(arena_base + iv.offset, iv.nbytes);
    return CompiledGraph::exec_instr(ins, regs);
  }
  return CompiledGraph::exec_instr(ins, regs);
}

}  // namespace

std::vector<RtValue> CompiledGraph::run(std::vector<RtValue> inputs,
                                        ExecHooks* hooks) const {
  return run_impl(std::move(inputs), hooks, nullptr, nullptr);
}

std::vector<RtValue> CompiledGraph::run_planned(std::vector<RtValue> inputs,
                                                const TapePlan& plan,
                                                std::byte* arena_base,
                                                ExecHooks* hooks) const {
  return run_impl(std::move(inputs), hooks, &plan, arena_base);
}

std::vector<RtValue> CompiledGraph::run_impl(std::vector<RtValue> inputs,
                                             ExecHooks* hooks,
                                             const TapePlan* plan,
                                             std::byte* arena_base) const {
  if (inputs.size() != input_regs_.size()) {
    throw arity_error(input_regs_.size(), inputs.size())
        .with_engine(Engine::Tape);
  }
  std::vector<RtValue> regs(static_cast<std::size_t>(num_regs_));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    regs[static_cast<std::size_t>(input_regs_[i])] = std::move(inputs[i]);
  }
  if (hooks) hooks->on_run_begin(instrs_.size());
  std::vector<RtValue> result;
  try {
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
      const Instr& ins = instrs_[i];
      RtValue out;
      try {
        if (hooks && ins.node) hooks->on_node_begin(*ins.node);
        out = exec_instr_planned(ins, regs, plan, i, arena_base);
        if (hooks && ins.node) hooks->on_node_output(*ins.node, out);
        if (hooks && ins.node) hooks->on_node_end(*ins.node, out);
      } catch (...) {
        rethrow_annotated(
            ins.node, Engine::Tape,
            live_register_names(input_nodes_, input_regs_, instrs_, regs));
      }
      if (ins.op == Opcode::Output) {
        result.push_back(std::move(out));
      } else if (ins.out_reg >= 0) {
        regs[static_cast<std::size_t>(ins.out_reg)] = std::move(out);
      }
      // Release dead registers (the `v = None` of generated Python): tensors
      // free their storage at last use exactly as fx's generated code does.
      for (int r : ins.frees) regs[static_cast<std::size_t>(r)] = RtValue();
    }
  } catch (...) {
    // Hook contract: on_run_end fires even for aborted runs.
    if (hooks) hooks->on_run_end();
    throw;
  }
  if (hooks) hooks->on_run_end();
  return result;
}

// ---------------------------------------------------------------------------
// GraphModule
// ---------------------------------------------------------------------------

GraphModule::GraphModule(nn::Module::Ptr root, std::unique_ptr<Graph> graph,
                         std::string class_name)
    : nn::Module(std::move(class_name)),
      root_(std::move(root)),
      graph_(std::move(graph)) {
  if (!graph_) throw std::invalid_argument("GraphModule: null graph");
}

nn::Module::Ptr GraphModule::resolve_module(const std::string& qualname) const {
  if (!root_) {
    throw std::out_of_range("GraphModule has no module hierarchy for '" +
                            qualname + "'");
  }
  return root_->get_submodule(qualname);
}

nn::Module::Ptr GraphModule::get_submodule(const std::string& qualname) const {
  try {
    return nn::Module::get_submodule(qualname);
  } catch (const std::out_of_range&) {
    return resolve_module(qualname);
  }
}

Tensor GraphModule::get_parameter(const std::string& qualname) const {
  try {
    return nn::Module::get_parameter(qualname);
  } catch (const std::out_of_range&) {
    return resolve_attr(qualname);
  }
}

Tensor GraphModule::resolve_attr(const std::string& qualname) const {
  // The GraphModule's own state first: passes that bake tensors (constant
  // folding's "_folded_N" attrs) register them on the GraphModule itself,
  // which must resolve even when the module wraps a root hierarchy.
  try {
    return nn::Module::get_parameter(qualname);
  } catch (const std::out_of_range&) {
  }
  if (!root_) {
    throw std::out_of_range("GraphModule has no module hierarchy for '" +
                            qualname + "'");
  }
  return root_->get_parameter(qualname);
}

void GraphModule::recompile() {
  fn::ensure_registered();
  graph_->lint();
  code_ = generate_code(*graph_);

  auto compiled = std::make_unique<CompiledGraph>();
  const std::vector<Node*> order = graph_->nodes();
  const auto last = last_use_index(order);

  std::unordered_map<const Node*, int> reg_of;
  int next_reg = 0;
  // Pre-decode an Argument into an ArgExpr.
  std::function<Instr::ArgExpr(const Argument&)> build =
      [&](const Argument& a) -> Instr::ArgExpr {
    Instr::ArgExpr e;
    if (a.is_node()) {
      e.kind = Instr::ArgExpr::Kind::Reg;
      e.reg = reg_of.at(a.node());
      return e;
    }
    if (a.is_list()) {
      bool all_int = true;
      for (const auto& item : a.list()) all_int = all_int && item.is_int();
      if (all_int) {
        e.kind = Instr::ArgExpr::Kind::Imm;
        e.imm = a.int_list();
        return e;
      }
      e.kind = Instr::ArgExpr::Kind::List;
      for (const auto& item : a.list()) e.items.push_back(build(item));
      return e;
    }
    e.kind = Instr::ArgExpr::Kind::Imm;
    if (a.is_int()) e.imm = a.as_int();
    else if (a.is_double()) e.imm = a.as_double();
    else if (a.is_bool()) e.imm = a.as_bool();
    else if (a.is_string()) e.imm = a.as_string();
    // None stays monostate.
    return e;
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    Node* n = order[i];
    if (n->op() == Opcode::Placeholder) {
      reg_of[n] = next_reg;
      compiled->input_regs_.push_back(next_reg);
      compiled->input_nodes_.push_back(n);
      ++next_reg;
      continue;
    }
    Instr ins;
    ins.op = n->op();
    ins.node = n;
    for (const auto& a : n->args()) ins.args.push_back(build(a));

    switch (n->op()) {
      case Opcode::CallFunction:
      case Opcode::CallMethod: {
        const auto& reg = n->op() == Opcode::CallFunction
                              ? OpRegistry::functions()
                              : OpRegistry::methods();
        ins.fn = &reg.at(n->target());
        // Merge kwargs into positional slots once, at compile time.
        if (!n->kwargs().empty()) {
          if (ins.args.size() < ins.fn->param_names.size()) {
            ins.args.resize(ins.fn->param_names.size());
          }
          for (const auto& [key, v] : n->kwargs()) {
            bool placed = false;
            for (std::size_t s = 0; s < ins.fn->param_names.size(); ++s) {
              if (ins.fn->param_names[s] == key) {
                ins.args[s] = build(v);
                placed = true;
                break;
              }
            }
            if (!placed) {
              throw std::invalid_argument("node '" + n->name() +
                                          "': unknown kwarg '" + key + "'");
            }
          }
        }
        break;
      }
      case Opcode::CallModule:
        ins.module = resolve_module(n->target());
        break;
      case Opcode::GetAttr:
        ins.attr = resolve_attr(n->target());
        break;
      case Opcode::Output:
        break;
      case Opcode::Placeholder:
        break;
    }
    if (n->op() != Opcode::Output) {
      ins.out_reg = next_reg;
      reg_of[n] = next_reg;
      ++next_reg;
    }
    compiled->instrs_.push_back(std::move(ins));
  }

  // Attach register frees at each node's last use.
  std::unordered_map<const Node*, Instr*> instr_of;
  for (auto& ins : compiled->instrs_) instr_of[ins.node] = &ins;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    auto it = last.find(n);
    if (it == last.end() || it->second < 0) continue;
    const Node* last_user = order[static_cast<std::size_t>(it->second)];
    auto reg_it = reg_of.find(n);
    auto ins_it = instr_of.find(last_user);
    if (reg_it != reg_of.end() && ins_it != instr_of.end()) {
      ins_it->second->frees.push_back(reg_it->second);
    }
  }

  compiled->num_regs_ = next_reg;
  compiled_ = std::move(compiled);
  // Any installed memory plan indexed the old tape; drop it (and every
  // cached specialization — their instruction indices are meaningless on
  // the new tape). The replanner (if set) rebuilds a matching plan on the
  // next run_planned().
  std::shared_ptr<PlanCache> cache;
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    plan_.reset();
    arena_.reset();
    cache = plan_cache_;
  }
  if (cache) cache->clear();
}

void GraphModule::install_plan(std::shared_ptr<const TapePlan> plan) {
  if (!plan) {
    clear_plan();
    return;
  }
  // Build the arena before publishing, then publish the pair under the lock:
  // a concurrent reader either sees the old (plan, arena) pair or the new
  // one, never a plan whose arena is missing or undersized.
  auto arena = std::make_shared<MemoryArena>(plan->arena_bytes);
  std::lock_guard<std::mutex> lk(plan_mu_);
  arena_ = std::move(arena);
  plan_ = std::move(plan);
}

void GraphModule::clear_plan() {
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_.reset();
  arena_.reset();
}

std::shared_ptr<const TapePlan> GraphModule::plan() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return plan_;
}

void GraphModule::set_plan_cache(std::shared_ptr<PlanCache> cache) {
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_cache_ = std::move(cache);
}

std::shared_ptr<PlanCache> GraphModule::plan_cache() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return plan_cache_;
}

std::shared_ptr<PlanCacheEntry> GraphModule::replan_into_cache(
    const std::vector<RtValue>& inputs) {
  std::shared_ptr<PlanCache> cache = plan_cache();
  if (!cache || !replanner_) return nullptr;
  const std::string sig = cache->signature_of(inputs);
  std::lock_guard<std::mutex> lk(replan_mu_);
  // Double-checked: another thread may have planned this signature while we
  // waited for the planning lock.
  if (std::shared_ptr<PlanCacheEntry> raced = cache->peek(sig)) return raced;
  // Plan at the signature's canonical shapes (dim 0 rounded up under
  // bucketing) so one plan serves the whole bucket. Graphs that reject the
  // canonical shapes (e.g. square-matmul graphs where rounding one dim
  // breaks the contract) fall back to planning at the exact inputs — the
  // entry still serves the bucket, with off-canonical sizes degrading to
  // heap allocation (see core/plan_cache.h).
  std::vector<Tensor> canon;
  bool planned = false;
  if (cache->canonical_inputs(inputs, &canon)) {
    std::vector<RtValue> canon_rt(canon.begin(), canon.end());
    try {
      replanner_(*this, canon_rt);
      planned = has_plan();
    } catch (...) {
      planned = false;
    }
  }
  if (!planned) {
    replanner_(*this, inputs);
    if (!has_plan()) return nullptr;
  }
  return cache->insert(inputs, plan());
}

bool GraphModule::run_planned_cached(
    const std::vector<RtValue>& inputs,
    std::shared_ptr<const TapePlan>* plan_out,
    std::shared_ptr<PlanCacheEntry>* entry_out) {
  std::shared_ptr<PlanCache> cache = plan_cache();
  if (!cache) return false;
  std::shared_ptr<PlanCacheEntry> entry = cache->lookup(inputs);
  if (!entry) entry = replan_into_cache(inputs);
  if (!entry) return false;
  // Stale-tape backstop: recompile() clears the cache under plan_mu_, but an
  // entry obtained just before that clear could index the old tape.
  if (entry->plan()->intervals.size() != compiled_->instrs().size()) {
    return false;
  }
  *plan_out = entry->plan();
  *entry_out = std::move(entry);
  return true;
}

std::vector<RtValue> GraphModule::run_planned(std::vector<RtValue> inputs,
                                              ExecHooks* hooks) {
  if (!compiled_) recompile();
  {
    // Cache path: hit = signature hash + guard check, zero planning work;
    // miss plans once (replan_into_cache) and inserts. Each run leases its
    // own arena, so concurrent callers of any shape mix are safe.
    std::shared_ptr<const TapePlan> plan;
    std::shared_ptr<PlanCacheEntry> entry;
    if (run_planned_cached(inputs, &plan, &entry)) {
      ArenaLease lease(entry);
      return compiled_->run_planned(std::move(inputs), *plan, lease.base(),
                                    hooks);
    }
    if (plan_cache()) {
      // Cache attached but no plan could be produced (non-tensor inputs,
      // planner failure): transparent unplanned fallback.
      return compiled_->run(std::move(inputs), hooks);
    }
  }
  // Cacheless path (install_plan without compile_planned): snapshot the
  // published (plan, arena) pair so a concurrent replan never leaves us with
  // a plan whose arena belongs to a different specialization.
  std::shared_ptr<const TapePlan> plan;
  std::shared_ptr<MemoryArena> arena;
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    plan = plan_;
    arena = arena_;
  }
  if (!plan || !plan_matches_inputs(*plan, inputs)) {
    // Shape change (or no plan yet): transparent re-plan, then fall back to
    // the unplanned tape if no matching plan could be produced.
    if (replanner_) {
      std::lock_guard<std::mutex> lk(replan_mu_);
      replanner_(*this, inputs);
    }
    {
      std::lock_guard<std::mutex> lk(plan_mu_);
      plan = plan_;
      arena = arena_;
    }
    if (!plan || !plan_matches_inputs(*plan, inputs)) {
      return compiled_->run(std::move(inputs), hooks);
    }
  }
  return compiled_->run_planned(std::move(inputs), *plan, arena->base(),
                                hooks);
}

Tensor GraphModule::run_planned(const Tensor& input) {
  std::vector<RtValue> out = run_planned(std::vector<RtValue>{input});
  if (out.empty() || !rt_is_tensor(out.front())) {
    throw std::logic_error("graph produced a non-tensor output");
  }
  return std::move(std::get<Tensor>(out.front()));
}

std::vector<Tensor> GraphModule::run_planned_batched(
    const std::vector<Tensor>& rows, ExecHooks* hooks) {
  if (rows.empty()) return {};
  const Tensor& head = rows.front();
  if (head.dim() < 1) {
    throw std::invalid_argument(
        "run_planned_batched: rows must have a batch dim");
  }
  std::int64_t total = 0;
  for (const Tensor& r : rows) {
    bool ok = r.dtype() == head.dtype() && r.dim() == head.dim();
    for (std::int64_t d = 1; ok && d < head.dim(); ++d) {
      ok = r.size(static_cast<int>(d)) == head.size(static_cast<int>(d));
    }
    if (!ok) {
      throw std::invalid_argument(
          "run_planned_batched: rows disagree on dtype or trailing dims");
    }
    total += r.size(0);
  }
  // One planned run over the whole batch. A single-request batch skips the
  // concat copy and runs on the caller's tensor directly.
  Tensor batched = rows.size() == 1 ? head : ops::cat(rows, 0);
  std::vector<RtValue> out =
      run_planned(std::vector<RtValue>{RtValue(std::move(batched))}, hooks);
  if (out.size() != 1 || !rt_is_tensor(out.front())) {
    throw ExecError(ErrorCode::NodeFailure,
                    "run_planned_batched: graph did not produce a single "
                    "tensor output");
  }
  Tensor result = std::move(std::get<Tensor>(out.front()));
  if (result.dim() < 1 || result.size(0) != total) {
    throw ExecError(
        ErrorCode::NodeFailure,
        "run_planned_batched: graph is not row-count-preserving (output "
        "dim 0 is " +
            std::to_string(result.dim() < 1 ? -1 : result.size(0)) +
            ", batch has " + std::to_string(total) + " rows)");
  }
  std::vector<Tensor> split;
  split.reserve(rows.size());
  std::int64_t off = 0;
  for (const Tensor& r : rows) {
    const std::int64_t k = r.size(0);
    // clone(): each response owns its bytes — never a view into the batch
    // (whose storage may be arena-backed and recycled by the next run).
    split.push_back(result.narrow(0, off, k).clone());
    off += k;
  }
  return split;
}

std::vector<RtValue> GraphModule::run_planned_parallel(
    std::vector<RtValue> inputs, int num_threads) {
  if (!compiled_) recompile();
  {
    // Cache path: hand the executor the entry's plan explicitly; it sizes
    // its own arena from it, so eviction mid-run is harmless (the entry and
    // plan stay alive through our shared_ptrs).
    std::shared_ptr<const TapePlan> plan;
    std::shared_ptr<PlanCacheEntry> entry;
    if (run_planned_cached(inputs, &plan, &entry)) {
      ExecutorOptions eo;
      eo.num_threads = num_threads;
      eo.use_plan = true;
      eo.plan = std::move(plan);
      ParallelExecutor ex(*this, eo);
      return ex.run(std::move(inputs));
    }
    if (plan_cache()) {
      ParallelExecutor ex(*this, ExecutorOptions{num_threads, false});
      return ex.run(std::move(inputs));
    }
  }
  std::shared_ptr<const TapePlan> plan = this->plan();
  if (!plan || !plan_matches_inputs(*plan, inputs)) {
    if (replanner_) {
      std::lock_guard<std::mutex> lk(replan_mu_);
      replanner_(*this, inputs);
    }
    plan = this->plan();
  }
  ExecutorOptions eo;
  eo.num_threads = num_threads;
  // The executor snapshots the (possibly re-planned) plan at construction
  // and owns its own arena; with no matching plan it runs unplanned.
  eo.use_plan = plan != nullptr && plan_matches_inputs(*plan, inputs);
  if (eo.use_plan) eo.plan = std::move(plan);
  ParallelExecutor ex(*this, eo);
  return ex.run(std::move(inputs));
}

const CompiledGraph& GraphModule::compiled_graph() const {
  if (!compiled_) throw std::logic_error("GraphModule: call recompile() first");
  return *compiled_;
}

const std::string& GraphModule::code() const {
  if (!compiled_) throw std::logic_error("GraphModule: call recompile() first");
  return code_;
}

Value GraphModule::forward(const std::vector<Value>& inputs) {
  if (!compiled_) recompile();
  std::vector<RtValue> rt;
  rt.reserve(inputs.size());
  for (const auto& v : inputs) rt.push_back(value_to_rt(v));
  std::vector<RtValue> out = compiled_->run(std::move(rt));
  if (out.empty()) return Value();
  return rt_to_value(std::move(out.front()));
}

Value GraphModule::forward_parallel(const std::vector<Value>& inputs,
                                    int num_threads) {
  if (!compiled_) recompile();
  ParallelExecutor ex(*this, ExecutorOptions{num_threads, false});
  std::vector<RtValue> rt;
  rt.reserve(inputs.size());
  for (const auto& v : inputs) rt.push_back(value_to_rt(v));
  std::vector<RtValue> out = ex.run(std::move(rt));
  if (out.empty()) return Value();
  return rt_to_value(std::move(out.front()));
}

Tensor GraphModule::run(const std::vector<Tensor>& inputs) {
  std::vector<Value> vs;
  vs.reserve(inputs.size());
  for (const auto& t : inputs) vs.emplace_back(t);
  return forward(vs).tensor();
}

Tensor GraphModule::run_parallel(const std::vector<Tensor>& inputs,
                                 int num_threads) {
  std::vector<Value> vs;
  vs.reserve(inputs.size());
  for (const auto& t : inputs) vs.emplace_back(t);
  return forward_parallel(vs, num_threads).tensor();
}

void check_guards_strict(const GraphModule& gm,
                         const std::vector<RtValue>& inputs) {
  const std::vector<Node*> phs = gm.graph().placeholders();
  if (inputs.size() != phs.size()) throw arity_error(phs.size(), inputs.size());
  for (const GuardSpec& g : gm.guards()) {
    std::size_t idx = phs.size();
    for (std::size_t i = 0; i < phs.size(); ++i) {
      if (phs[i]->name() == g.placeholder) {
        idx = i;
        break;
      }
    }
    if (idx == phs.size()) {
      throw ExecError(ErrorCode::GuardViolation,
                      "guard references placeholder '" + g.placeholder +
                          "' which no longer exists in the graph (stale "
                          "guards; regenerate after transforms)");
    }
    const RtValue& v = inputs[idx];
    const std::string want =
        "shape " + shape_str(g.shape) + " dtype " + dtype_name(g.dtype);
    if (!rt_is_tensor(v)) {
      throw ExecError(ErrorCode::GuardViolation,
                      "input for placeholder '" + g.placeholder +
                          "' is not a tensor; guard expects " + want)
          .with_node(*phs[idx]);
    }
    const Tensor& t = std::get<Tensor>(v);
    if (t.sizes() != g.shape || t.dtype() != g.dtype) {
      throw ExecError(ErrorCode::GuardViolation,
                      "input for placeholder '" + g.placeholder +
                          "' violates its guard: expected " + want +
                          ", got shape " + shape_str(t.sizes()) + " dtype " +
                          dtype_name(t.dtype()))
          .with_node(*phs[idx]);
    }
  }
}

std::vector<RtValue> GraphModule::run_resilient(std::vector<RtValue> inputs,
                                                const ResilientOptions& opts,
                                                ResilientReport* report) {
  if (!compiled_) recompile();
  if (report) *report = ResilientReport{};
  // Guard/arity violations are the caller's bug, identical on every engine:
  // fail once, up front, before any rung runs.
  if (opts.check_guards) check_guards_strict(*this, inputs);

  std::exception_ptr last;
  std::vector<RtValue> out;
  auto attempt = [&](Engine eng, auto&& body) -> bool {
    EngineAttempt a;
    a.engine = eng;
    try {
      out = body();
      a.ok = true;
      if (report) {
        report->attempts.push_back(a);
        report->succeeded = eng;
      }
      return true;
    } catch (const ExecError& e) {
      a.code = e.code();
      a.error = e.what();
      last = std::current_exception();
      if (report) report->attempts.push_back(a);
      if (is_input_error(e.code())) throw;
      return false;
    } catch (const std::exception& e) {
      a.error = e.what();
      last = std::current_exception();
      if (report) report->attempts.push_back(a);
      return false;
    }
  };

  // Each rung gets its own copy of the inputs (tensor copies share storage,
  // so this is pointer-cheap): a failed rung may already have moved its copy
  // into registers, and recovery must start from pristine inputs to stay
  // bit-identical with a fault-free run.
  if (opts.try_parallel) {
    const bool ok = attempt(Engine::Parallel, [&] {
      ExecutorOptions eo;
      eo.num_threads = opts.num_threads;
      eo.hooks = opts.hooks;
      eo.deadline_seconds = opts.deadline_seconds;
      ParallelExecutor ex(*this, eo);
      return ex.run(inputs);
    });
    if (ok) return out;
  }
  if (opts.try_tape) {
    const bool ok = attempt(Engine::Tape,
                            [&] { return compiled_->run(inputs, opts.hooks); });
    if (ok) return out;
  }
  if (opts.try_interpreter) {
    const bool ok = attempt(Engine::Interpreter, [&] {
      Interpreter interp(*this);
      interp.set_hooks(opts.hooks);
      std::vector<RtValue> single;
      single.push_back(interp.run(inputs));
      return single;
    });
    if (ok) return out;
  }
  if (last) std::rethrow_exception(last);
  throw ExecError(ErrorCode::Unknown,
                  "run_resilient: every engine is disabled in "
                  "ResilientOptions");
}

Tensor GraphModule::run_resilient(const Tensor& input,
                                  const ResilientOptions& opts,
                                  ResilientReport* report) {
  std::vector<RtValue> out =
      run_resilient(std::vector<RtValue>{input}, opts, report);
  if (out.empty() || !rt_is_tensor(out.front())) {
    throw ExecError(ErrorCode::Unknown, "graph produced a non-tensor output");
  }
  return std::move(std::get<Tensor>(out.front()));
}

void GraphModule::to_folder(const std::string& dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  {
    std::ofstream f(dir + "/module.py");
    f << code();
  }
  {
    // Parseable encoding (core/graph_io.h): reload with parse_graph() and
    // rebind against the same module hierarchy.
    std::ofstream f(dir + "/graph.txt");
    f << serialize_graph(*graph_);
  }
  {
    std::ofstream f(dir + "/state.txt");
    if (root_) {
      for (const auto& [name, t] : root_->named_state()) {
        f << name << " " << shape_str(t.sizes()) << " " << dtype_name(t.dtype())
          << "\n";
      }
    }
  }
}

}  // namespace fxcpp::fx
