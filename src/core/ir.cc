#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/structural_rules.h"
#include "core/graph.h"

namespace fxcpp::fx {

// ---------------------------------------------------------------------------
// Argument
// ---------------------------------------------------------------------------

std::vector<std::int64_t> Argument::int_list() const {
  std::vector<std::int64_t> out;
  for (const auto& a : list()) out.push_back(a.as_int());
  return out;
}

int Argument::replace_node(Node* from, Node* to) {
  if (is_node() && node() == from) {
    v_ = to;
    return 1;
  }
  if (is_list()) {
    int n = 0;
    for (auto& a : list()) n += a.replace_node(from, to);
    return n;
  }
  return 0;
}

bool Argument::operator==(const Argument& other) const { return v_ == other.v_; }

std::string Argument::to_string() const {
  if (is_none()) return "None";
  if (is_node()) return node()->name();
  if (is_bool()) return as_bool() ? "True" : "False";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream os;
    os << as_double();
    return os.str();
  }
  if (is_string()) return "'" + as_string() + "'";
  std::ostringstream os;
  os << '[';
  const auto& l = list();
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (i) os << ", ";
    os << l[i].to_string();
  }
  os << ']';
  return os.str();
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Placeholder: return "placeholder";
    case Opcode::CallFunction: return "call_function";
    case Opcode::CallMethod: return "call_method";
    case Opcode::CallModule: return "call_module";
    case Opcode::GetAttr: return "get_attr";
    case Opcode::Output: return "output";
  }
  return "?";
}

Argument Node::kwarg(const std::string& key) const {
  for (const auto& [k, v] : kwargs_) {
    if (k == key) return v;
  }
  return Argument();
}

void Node::add_input_uses() {
  for (const auto& a : args_) {
    a.for_each_node([this](Node* n) { n->users_.insert(this); });
  }
  for (const auto& [k, v] : kwargs_) {
    (void)k;
    v.for_each_node([this](Node* n) { n->users_.insert(this); });
  }
}

void Node::remove_input_uses() {
  for (Node* in : input_nodes()) in->users_.erase(this);
}

void Node::set_args(std::vector<Argument> args) {
  remove_input_uses();
  args_ = std::move(args);
  add_input_uses();
}

void Node::set_kwargs(Kwargs kwargs) {
  remove_input_uses();
  kwargs_ = std::move(kwargs);
  add_input_uses();
}

std::vector<Node*> Node::input_nodes() const {
  std::vector<Node*> out;
  std::set<Node*> seen;
  auto collect = [&](Node* n) {
    if (seen.insert(n).second) out.push_back(n);
  };
  for (const auto& a : args_) a.for_each_node(collect);
  for (const auto& [k, v] : kwargs_) {
    (void)k;
    v.for_each_node(collect);
  }
  return out;
}

int Node::replace_all_uses_with(Node* replacement) {
  if (replacement == this) return 0;
  int total = 0;
  // Copy: rewiring mutates users_.
  const std::set<Node*> users = users_;
  for (Node* u : users) {
    u->remove_input_uses();
    for (auto& a : u->args_) total += a.replace_node(this, replacement);
    for (auto& [k, v] : u->kwargs_) {
      (void)k;
      total += v.replace_node(this, replacement);
    }
    u->add_input_uses();
  }
  return total;
}

const MetaValue& Node::meta(const std::string& key) const {
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    throw std::out_of_range("Node '" + name_ + "' has no meta key '" + key + "'");
  }
  return it->second;
}

std::string Node::format() const {
  std::ostringstream os;
  os << name_ << " = " << opcode_name(op_) << " target=" << target_
     << " args=(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) os << ", ";
    os << args_[i].to_string();
  }
  if (args_.size() == 1) os << ",";
  os << ")";
  if (!kwargs_.empty()) {
    os << " kwargs={";
    for (std::size_t i = 0; i < kwargs_.size(); ++i) {
      if (i) os << ", ";
      os << kwargs_[i].first << ": " << kwargs_[i].second.to_string();
    }
    os << "}";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

std::string Graph::unique_name(const std::string& hint) {
  std::string base = hint.empty() ? "node" : hint;
  // Sanitize: dots in module paths become underscores (layer1.0.conv1 ->
  // layer1_0_conv1), matching fx's variable naming.
  for (char& c : base) {
    if (c == '.' || c == ' ' || c == '-') c = '_';
  }
  int& count = name_counts_[base];
  std::string name = count == 0 ? base : base + "_" + std::to_string(count);
  ++count;
  // Extremely unlikely collision with an explicit name; bump until free.
  while (find(name) != nullptr) {
    name = base + "_" + std::to_string(count);
    ++count;
  }
  return name;
}

Node* Graph::insert(std::unique_ptr<Node> n) {
  Node* raw = n.get();
  raw->graph_ = this;
  NodeList::iterator where =
      insert_before_ ? iter_of(insert_before_) : nodes_.end();
  auto it = nodes_.insert(where, std::move(n));
  pos_[raw] = it;
  raw->add_input_uses();
  return raw;
}

Graph::NodeList::iterator Graph::iter_of(Node* n) {
  auto it = pos_.find(n);
  if (it == pos_.end()) {
    throw std::logic_error("node does not belong to this graph");
  }
  return it->second;
}

Node* Graph::create_node(Opcode op, const std::string& target,
                         std::vector<Argument> args, Kwargs kwargs,
                         const std::string& name_hint) {
  std::unique_ptr<Node> n(new Node());
  n->op_ = op;
  n->target_ = target;
  n->args_ = std::move(args);
  n->kwargs_ = std::move(kwargs);
  std::string hint = name_hint;
  if (hint.empty()) {
    switch (op) {
      case Opcode::Placeholder: hint = target; break;
      case Opcode::Output: hint = "output"; break;
      case Opcode::GetAttr: hint = target; break;
      default: {
        // `aten::relu` / `relu` -> `relu`
        const auto pos = target.rfind(':');
        hint = pos == std::string::npos ? target : target.substr(pos + 1);
      }
    }
  }
  n->name_ = unique_name(hint);
  return insert(std::move(n));
}

Node* Graph::placeholder(const std::string& name) {
  return create_node(Opcode::Placeholder, name, {}, {}, name);
}

Node* Graph::call_function(const std::string& target,
                           std::vector<Argument> args, Kwargs kwargs) {
  return create_node(Opcode::CallFunction, target, std::move(args),
                     std::move(kwargs));
}

Node* Graph::call_method(const std::string& target, std::vector<Argument> args,
                         Kwargs kwargs) {
  return create_node(Opcode::CallMethod, target, std::move(args),
                     std::move(kwargs));
}

Node* Graph::call_module(const std::string& target, std::vector<Argument> args,
                         Kwargs kwargs) {
  return create_node(Opcode::CallModule, target, std::move(args),
                     std::move(kwargs));
}

Node* Graph::get_attr(const std::string& target) {
  return create_node(Opcode::GetAttr, target);
}

Node* Graph::output(Argument value) {
  if (output_) throw std::logic_error("graph already has an output node");
  Node* n = create_node(Opcode::Output, "output", {std::move(value)});
  output_ = n;
  return n;
}

Node* Graph::copy_node(const Node& src,
                       const std::function<Argument(const Argument&)>& arg_map) {
  std::vector<Argument> args;
  args.reserve(src.args().size());
  for (const auto& a : src.args()) args.push_back(arg_map(a));
  Kwargs kwargs;
  kwargs.reserve(src.kwargs().size());
  for (const auto& [k, v] : src.kwargs()) kwargs.emplace_back(k, arg_map(v));
  Node* n = create_node(src.op(), src.target(), std::move(args),
                        std::move(kwargs), src.name());
  for (const auto& [k, v] : src.all_meta()) n->set_meta(k, v);
  return n;
}

Argument Graph::inline_graph(const Graph& src,
                             const std::vector<Argument>& placeholder_args) {
  std::unordered_map<const Node*, Argument> env;
  std::size_t ph_idx = 0;
  // Recursively remap an argument of `src` into this graph.
  std::function<Argument(const Argument&)> remap = [&](const Argument& a) -> Argument {
    if (a.is_node()) {
      auto it = env.find(a.node());
      if (it == env.end()) {
        throw std::logic_error("inline_graph: use before def in source graph");
      }
      return it->second;
    }
    if (a.is_list()) {
      Argument::List out;
      out.reserve(a.list().size());
      for (const auto& item : a.list()) out.push_back(remap(item));
      return Argument(std::move(out));
    }
    return a;
  };
  for (const Node* n : src.nodes()) {
    switch (n->op()) {
      case Opcode::Placeholder:
        if (ph_idx >= placeholder_args.size()) {
          throw std::invalid_argument("inline_graph: not enough inputs");
        }
        env[n] = placeholder_args[ph_idx++];
        break;
      case Opcode::Output:
        return remap(n->args().at(0));
      default:
        env[n] = Argument(copy_node(*n, remap));
    }
  }
  throw std::logic_error("inline_graph: source graph has no output node");
}

Node* Graph::set_insert_point_before(Node* n) {
  Node* prev = insert_before_;
  insert_before_ = n;
  return prev;
}

void Graph::erase_node(Node* n) {
  if (!n->users().empty()) {
    throw std::logic_error("erase_node: node '" + n->name() + "' still has " +
                           std::to_string(n->users().size()) + " users");
  }
  if (n == output_) output_ = nullptr;
  if (n == insert_before_) insert_before_ = nullptr;
  n->remove_input_uses();
  auto it = iter_of(n);
  pos_.erase(n);
  nodes_.erase(it);
}

void Graph::move_before(Node* n, Node* before) {
  auto src = iter_of(n);
  auto dst = before ? iter_of(before) : nodes_.end();
  nodes_.splice(dst, nodes_, src);
}

int Graph::eliminate_dead_code() {
  int erased = 0;
  // Reverse order so chains die in one pass.
  std::vector<Node*> order = nodes();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->op() == Opcode::Placeholder || n->op() == Opcode::Output) continue;
    if (n->users().empty()) {
      erase_node(n);
      ++erased;
    }
  }
  return erased;
}

std::vector<Node*> Graph::nodes() const {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.get());
  return out;
}

std::vector<Node*> Graph::placeholders() const {
  std::vector<Node*> out;
  for (const auto& n : nodes_) {
    if (n->op() == Opcode::Placeholder) out.push_back(n.get());
  }
  return out;
}

Node* Graph::find(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

// Rebased onto the analysis subsystem's structural rules (header-only, so
// core takes no link dependency): run every rule, collect every finding, and
// throw listing ALL error-severity diagnostics. The Verifier runs the exact
// same rule implementations, so lint() and verify() cannot disagree.
void Graph::lint() const {
  std::vector<analysis::Diagnostic> diags;
  analysis::rules::check_structure(*this, diags);
  int errors = 0;
  std::string detail;
  for (const auto& d : diags) {
    if (d.severity != analysis::Severity::Error) continue;
    ++errors;
    detail += "\n  " + d.to_string();
  }
  if (errors > 0) {
    throw std::logic_error("lint: " + std::to_string(errors) +
                           " error(s):" + detail);
  }
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (const auto& n : nodes_) os << n->format() << "\n";
  return os.str();
}

std::unique_ptr<Graph> Graph::clone(
    std::unordered_map<const Node*, Node*>* node_map) const {
  auto g = std::make_unique<Graph>();
  std::unordered_map<const Node*, Node*> local;
  std::function<Argument(const Argument&)> remap = [&](const Argument& a) -> Argument {
    if (a.is_node()) return Argument(local.at(a.node()));
    if (a.is_list()) {
      Argument::List out;
      out.reserve(a.list().size());
      for (const auto& item : a.list()) out.push_back(remap(item));
      return Argument(std::move(out));
    }
    return a;
  };
  for (const auto& np : nodes_) {
    Node* copy = g->copy_node(*np, remap);
    if (np->op() == Opcode::Output) g->output_ = copy;
    local[np.get()] = copy;
  }
  if (node_map) *node_map = std::move(local);
  return g;
}

}  // namespace fxcpp::fx
