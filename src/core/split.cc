#include "core/split.h"

#include <map>
#include <set>
#include <stdexcept>

namespace fxcpp::fx {

namespace {

// Parent root holding the generated submodules.
class SplitHolder : public nn::Module {
 public:
  SplitHolder() : nn::Module("SplitHolder") {}
  Value forward(const std::vector<Value>&) override {
    throw std::logic_error("SplitHolder::forward should never run");
  }
};

struct Part {
  int key = 0;
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  std::unordered_map<const Node*, Node*> map;      // orig -> part node
  std::vector<const Node*> inputs;                 // orig nodes fed in
  std::unordered_map<const Node*, Node*> input_ph; // orig -> part placeholder
  std::vector<const Node*> outputs;                // orig nodes escaping
  std::set<const Node*> members;
};

}  // namespace

SplitResult split_module(GraphModule& gm,
                         const std::function<int(const Node&)>& part_fn) {
  Graph& g = gm.graph();
  const std::vector<Node*> order = g.nodes();

  // --- assign partitions -------------------------------------------------
  std::unordered_map<const Node*, int> part_of;  // -> partition index
  std::map<int, int> key_to_index;
  std::vector<std::unique_ptr<Part>> parts;
  auto index_for_key = [&](int key) {
    auto it = key_to_index.find(key);
    if (it != key_to_index.end()) return it->second;
    const int idx = static_cast<int>(parts.size());
    key_to_index[key] = idx;
    parts.push_back(std::make_unique<Part>());
    parts.back()->key = key;
    return idx;
  };
  for (const Node* n : order) {
    switch (n->op()) {
      case Opcode::Placeholder:
      case Opcode::Output:
        break;
      case Opcode::GetAttr: {
        // Travels with its first user; resolved in a second pass.
        break;
      }
      default:
        part_of[n] = index_for_key(part_fn(*n));
    }
  }
  for (const Node* n : order) {
    if (n->op() != Opcode::GetAttr) continue;
    int idx = -1;
    for (const Node* m : order) {
      if (part_of.count(m)) {
        for (const Node* in : m->input_nodes()) {
          if (in == n) {
            idx = part_of[m];
            break;
          }
        }
      }
      if (idx >= 0) break;
    }
    if (idx < 0) idx = index_for_key(part_fn(*n));
    part_of[n] = idx;
  }

  // --- populate partition graphs -----------------------------------------
  for (const Node* n : order) {
    auto it = part_of.find(n);
    if (it == part_of.end()) continue;
    Part& p = *parts[static_cast<std::size_t>(it->second)];
    std::function<Argument(const Argument&)> remap =
        [&](const Argument& a) -> Argument {
      if (a.is_node()) {
        const Node* m = a.node();
        if (p.members.count(m)) return Argument(p.map.at(m));
        auto ph_it = p.input_ph.find(m);
        if (ph_it != p.input_ph.end()) return Argument(ph_it->second);
        Node* ph = p.graph->placeholder(m->name());
        p.input_ph[m] = ph;
        p.inputs.push_back(m);
        return Argument(ph);
      }
      if (a.is_list()) {
        Argument::List out;
        out.reserve(a.list().size());
        for (const auto& item : a.list()) out.push_back(remap(item));
        return Argument(std::move(out));
      }
      return a;
    };
    Node* copy = p.graph->copy_node(*n, remap);
    p.map[n] = copy;
    p.members.insert(n);
  }

  // New placeholders must precede compute nodes inside each partition graph;
  // move them to the front (created lazily above, possibly after nodes).
  for (auto& pp : parts) {
    Node* first = nullptr;
    for (Node* n : pp->graph->nodes()) {
      if (n->op() != Opcode::Placeholder) {
        first = n;
        break;
      }
    }
    if (!first) continue;
    for (Node* n : pp->graph->nodes()) {
      if (n->op() == Opcode::Placeholder) pp->graph->move_before(n, first);
    }
  }

  // --- compute partition outputs -------------------------------------------
  const Node* out_node = g.output_node();
  std::set<const Node*> output_deps;
  if (out_node) {
    for (const Node* in : out_node->input_nodes()) output_deps.insert(in);
  }
  for (const Node* n : order) {
    auto it = part_of.find(n);
    if (it == part_of.end()) continue;
    Part& p = *parts[static_cast<std::size_t>(it->second)];
    bool escapes = output_deps.count(n) != 0;
    for (const Node* u : n->users()) {
      auto uit = part_of.find(u);
      if (uit == part_of.end() || uit->second != it->second) escapes = true;
    }
    if (escapes) p.outputs.push_back(n);
  }

  for (auto& pp : parts) {
    if (pp->outputs.empty()) {
      throw std::invalid_argument("split_module: partition produces no output");
    }
    if (pp->outputs.size() == 1) {
      pp->graph->output(Argument(pp->map.at(pp->outputs[0])));
    } else {
      Argument::List items;
      for (const Node* o : pp->outputs) items.emplace_back(pp->map.at(o));
      pp->graph->output(Argument(std::move(items)));
    }
  }

  // --- build parent -----------------------------------------------------------
  auto holder = std::make_shared<SplitHolder>();
  auto parent_graph = std::make_unique<Graph>();
  std::unordered_map<const Node*, Argument> env;
  for (const Node* ph : g.placeholders()) {
    env[ph] = Argument(parent_graph->placeholder(ph->name()));
  }

  SplitResult result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    Part& p = *parts[i];
    const std::string name = "submod_" + std::to_string(i);
    std::vector<Argument> args;
    for (const Node* in : p.inputs) {
      auto it = env.find(in);
      if (it == env.end()) {
        throw std::invalid_argument(
            "split_module: partition assignment is not topologically "
            "consistent (value '" + in->name() + "' not yet available)");
      }
      args.push_back(it->second);
    }
    Node* call = parent_graph->call_module(name, std::move(args));
    if (p.outputs.size() == 1) {
      env[p.outputs[0]] = Argument(call);
    } else {
      for (std::size_t j = 0; j < p.outputs.size(); ++j) {
        Node* item = parent_graph->call_function(
            "getitem", {Argument(call), Argument(static_cast<std::int64_t>(j))});
        env[p.outputs[j]] = Argument(item);
      }
    }
    auto sub = std::make_shared<GraphModule>(gm.root(), std::move(p.graph),
                                             "Submodule");
    sub->recompile();
    holder->register_module(name, sub);
    result.submodules.push_back(std::move(sub));
    result.submodule_names.push_back(name);
  }

  if (out_node) {
    std::function<Argument(const Argument&)> remap =
        [&](const Argument& a) -> Argument {
      if (a.is_node()) return env.at(a.node());
      if (a.is_list()) {
        Argument::List items;
        items.reserve(a.list().size());
        for (const auto& item : a.list()) items.push_back(remap(item));
        return Argument(std::move(items));
      }
      return a;
    };
    parent_graph->output(remap(out_node->args().at(0)));
  }

  result.parent = std::make_shared<GraphModule>(
      holder, std::move(parent_graph), "SplitGraphModule");
  result.parent->recompile();
  return result;
}

}  // namespace fxcpp::fx
