#include "core/custom_op.h"

#include <stdexcept>

#include "core/tracer.h"

namespace fxcpp::fx {

void register_custom_op(const std::string& name,
                        std::vector<std::string> param_names,
                        CustomKernel kernel) {
  OpInfo info;
  info.name = name;
  info.param_names = std::move(param_names);
  info.run = [kernel = std::move(kernel)](const std::vector<RtValue>& args)
      -> RtValue {
    std::vector<Tensor> tensors;
    tensors.reserve(args.size());
    for (const auto& a : args) {
      if (rt_is_tensor(a)) tensors.push_back(rt_tensor(a));
    }
    return kernel(tensors);
  };
  OpRegistry::functions().add(std::move(info));
}

Value call_custom(const std::string& name, const std::vector<Value>& args) {
  const OpInfo* info = OpRegistry::functions().find(name);
  if (!info) {
    throw std::invalid_argument("call_custom: no registered op '" + name +
                                "'; call register_custom_op first");
  }
  // Record when any input is a Proxy (the __torch_function__-style check).
  Tracer* t = nullptr;
  for (const auto& v : args) {
    if (v.is_proxy()) {
      t = v.proxy().tracer;
      break;
    }
  }
  if (t) {
    std::vector<Argument> node_args;
    node_args.reserve(args.size());
    for (const auto& v : args) node_args.push_back(t->create_arg(v));
    return Value(t->create_proxy(Opcode::CallFunction, name,
                                 std::move(node_args)));
  }
  std::vector<RtValue> rt;
  rt.reserve(args.size());
  for (const auto& v : args) rt.emplace_back(v.tensor());
  return Value(rt_tensor(info->run(rt)));
}

}  // namespace fxcpp::fx
