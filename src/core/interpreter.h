// Interpreter — node-by-node graph execution with overridable hooks, the
// basis for "interpreting transforms" like shape propagation (Section 6.3)
// and quantization observers (Section 6.2.1). Mirrors fx.Interpreter.
//
// Unlike the compiled tape, the Interpreter resolves call targets per node;
// the measured gap between the two is the dispatch-overhead ablation bench.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::fx {

class ExecHooks;

class Interpreter {
 public:
  explicit Interpreter(GraphModule& gm) : gm_(gm) {}
  virtual ~Interpreter() = default;

  // Execute the whole graph; returns the value of the output node.
  // Intermediates are released from the environment at each node's last use
  // (computed from the use-def chains), so peak memory matches the serial
  // tape's liveness-based register freeing instead of growing with graph
  // depth.
  RtValue run(std::vector<RtValue> inputs);
  RtValue run(const Tensor& input) { return run(std::vector<RtValue>{input}); }

  // Attach per-node begin/end instrumentation (core/exec_hooks.h). The
  // observer must outlive run(); pass nullptr to detach.
  void set_hooks(ExecHooks* hooks) { hooks_ = hooks; }

  // Execute a single node given the current environment. Subclasses
  // typically call the base implementation and then inspect/replace the
  // result (e.g. ShapeProp records result.sizes()).
  virtual RtValue run_node(const Node& n);

 protected:
  // Resolve an Argument against the environment (Node refs -> values).
  RtValue eval_arg(const Argument& a) const;
  GraphModule& graph_module() { return gm_; }
  const std::unordered_map<const Node*, RtValue>& env() const { return env_; }

 private:
  GraphModule& gm_;
  std::unordered_map<const Node*, RtValue> env_;
  std::vector<RtValue> inputs_;
  std::size_t next_input_ = 0;
  ExecHooks* hooks_ = nullptr;
};

}  // namespace fxcpp::fx
