#include "core/subgraph_rewriter.h"

#include <set>
#include <stdexcept>

namespace fxcpp::fx {

namespace {

struct MatchState {
  std::unordered_map<const Node*, Node*> node_map;      // pattern -> target
  std::unordered_map<const Node*, Argument> ph_binding; // pattern ph -> arg
};

bool match_arg(const Argument& pat, const Argument& tgt, MatchState& st);

// Match pattern node `p` against target node `t`.
bool match_node(const Node* p, Node* t, MatchState& st) {
  auto it = st.node_map.find(p);
  if (it != st.node_map.end()) return it->second == t;
  if (p->op() != t->op() || p->target() != t->target()) return false;
  if (p->args().size() != t->args().size() ||
      p->kwargs().size() != t->kwargs().size()) {
    return false;
  }
  st.node_map[p] = t;
  for (std::size_t i = 0; i < p->args().size(); ++i) {
    if (!match_arg(p->args()[i], t->args()[i], st)) return false;
  }
  for (std::size_t i = 0; i < p->kwargs().size(); ++i) {
    if (p->kwargs()[i].first != t->kwargs()[i].first) return false;
    if (!match_arg(p->kwargs()[i].second, t->kwargs()[i].second, st)) {
      return false;
    }
  }
  return true;
}

bool match_arg(const Argument& pat, const Argument& tgt, MatchState& st) {
  if (pat.is_node()) {
    const Node* pn = pat.node();
    if (pn->op() == Opcode::Placeholder) {
      // Wildcard: binds any argument, consistently.
      auto it = st.ph_binding.find(pn);
      if (it != st.ph_binding.end()) return it->second == tgt;
      st.ph_binding[pn] = tgt;
      return true;
    }
    if (!tgt.is_node()) return false;
    return match_node(pn, tgt.node(), st);
  }
  if (pat.is_list() && tgt.is_list()) {
    if (pat.list().size() != tgt.list().size()) return false;
    for (std::size_t i = 0; i < pat.list().size(); ++i) {
      if (!match_arg(pat.list()[i], tgt.list()[i], st)) return false;
    }
    return true;
  }
  return pat == tgt;
}

}  // namespace

std::vector<Match> match_pattern(Graph& g, const Graph& pattern) {
  const Node* out = pattern.output_node();
  if (!out || !out->args().at(0).is_node()) {
    throw std::invalid_argument(
        "match_pattern: pattern must return a single node");
  }
  const Node* anchor_p = out->args().at(0).node();
  const std::vector<Node*> pattern_phs = pattern.placeholders();

  std::vector<Match> matches;
  std::set<const Node*> claimed;
  for (Node* cand : g.nodes()) {
    if (cand->op() == Opcode::Placeholder || cand->op() == Opcode::Output) {
      continue;
    }
    MatchState st;
    if (!match_node(anchor_p, cand, st)) continue;

    // Reject overlaps with earlier matches.
    bool overlaps = false;
    for (const auto& [pn, tn] : st.node_map) {
      (void)pn;
      if (claimed.count(tn)) overlaps = true;
    }
    if (overlaps) continue;

    // Internal (non-anchor) matched nodes must not feed anything outside the
    // match — otherwise removal would orphan users.
    bool escapes = false;
    std::set<const Node*> matched;
    for (const auto& [pn, tn] : st.node_map) {
      (void)pn;
      matched.insert(tn);
    }
    for (const auto& [pn, tn] : st.node_map) {
      (void)pn;
      if (tn == st.node_map.at(anchor_p)) continue;
      for (const Node* u : tn->users()) {
        if (!matched.count(u)) escapes = true;
      }
    }
    if (escapes) continue;

    Match m;
    m.anchor = st.node_map.at(anchor_p);
    m.node_map = st.node_map;
    for (const Node* ph : pattern_phs) {
      auto it = st.ph_binding.find(ph);
      // A placeholder the pattern never consumed matches "anything"; bind
      // None so replacement graphs that also ignore it still line up.
      m.inputs.push_back(it == st.ph_binding.end() ? Argument() : it->second);
    }
    for (const auto& [pn, tn] : st.node_map) {
      (void)pn;
      claimed.insert(tn);
    }
    matches.push_back(std::move(m));
  }
  return matches;
}

int replace_pattern(GraphModule& gm, const Graph& pattern,
                    const Graph& replacement) {
  Graph& g = gm.graph();
  const std::vector<Match> matches = match_pattern(g, pattern);
  for (const Match& m : matches) {
    Graph::InsertScope scope(g, m.anchor);
    Argument out = g.inline_graph(replacement, m.inputs);
    if (!out.is_node()) {
      throw std::invalid_argument(
          "replace_pattern: replacement must return a node");
    }
    // The anchor's users now consume a different computation; any shape/dtype
    // annotations recorded for the old values are stale.
    for (Node* user : m.anchor->users()) user->invalidate_shape_meta();
    out.node()->invalidate_shape_meta();
    m.anchor->replace_all_uses_with(out.node());
  }
  g.eliminate_dead_code();
  g.lint();
  if (!matches.empty()) gm.recompile();
  return static_cast<int>(matches.size());
}

}  // namespace fxcpp::fx
