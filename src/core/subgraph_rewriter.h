// Subgraph pattern matching and replacement — fx.replace_pattern.
//
// Patterns and replacements are expressed as traced graphs (build them with
// symbolic_trace on a small function): pattern placeholders are wildcards,
// the pattern's output anchors the match, and matches are replaced by
// splicing the replacement graph in (Figure 2's activation swap is the
// canonical use).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::fx {

struct Match {
  // Pattern output-arg node -> matched node in the target graph.
  Node* anchor = nullptr;
  // Pattern node -> target node for all internal pattern nodes.
  std::unordered_map<const Node*, Node*> node_map;
  // Pattern placeholder -> target argument feeding the match.
  std::vector<Argument> inputs;
};

// Find all non-overlapping matches of `pattern` in `g` (graph order).
std::vector<Match> match_pattern(Graph& g, const Graph& pattern);

// Replace every non-overlapping match of `pattern` inside `gm.graph()` with
// `replacement` (placeholder-for-placeholder). Returns matches replaced.
// Runs DCE afterwards and recompiles the GraphModule.
int replace_pattern(GraphModule& gm, const Graph& pattern,
                    const Graph& replacement);

}  // namespace fxcpp::fx
