#include "core/codegen.h"

#include <sstream>

namespace fxcpp::fx {

std::unordered_map<const Node*, int> last_use_index(
    const std::vector<Node*>& order) {
  std::unordered_map<const Node*, int> last;
  std::unordered_map<const Node*, int> pos;
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<int>(i);
    last[order[i]] = -1;
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const Node* in : order[i]->input_nodes()) {
      last[in] = static_cast<int>(i);
    }
  }
  return last;
}

namespace {

// Render an argument as a Python expression.
std::string expr(const Argument& a) {
  if (a.is_list()) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < a.list().size(); ++i) {
      if (i) os << ", ";
      os << expr(a.list()[i]);
    }
    os << ']';
    return os.str();
  }
  return a.to_string();
}

std::string call_args(const Node& n, std::size_t first = 0) {
  std::ostringstream os;
  bool any = false;
  for (std::size_t i = first; i < n.args().size(); ++i) {
    if (any) os << ", ";
    os << expr(n.args()[i]);
    any = true;
  }
  for (const auto& [k, v] : n.kwargs()) {
    if (any) os << ", ";
    os << k << " = " << expr(v);
    any = true;
  }
  return os.str();
}

const char* infix_for(const std::string& target) {
  if (target == "add") return " + ";
  if (target == "sub") return " - ";
  if (target == "mul") return " * ";
  if (target == "div") return " / ";
  return nullptr;
}

}  // namespace

std::string generate_code(const Graph& g) {
  const std::vector<Node*> order = g.nodes();
  const auto last = last_use_index(order);

  std::ostringstream os;
  os << "def forward(self";
  for (const Node* n : order) {
    if (n->op() == Opcode::Placeholder) os << ", " << n->name();
  }
  os << "):\n";

  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    std::ostringstream line;
    switch (n->op()) {
      case Opcode::Placeholder:
        continue;
      case Opcode::Output:
        line << "return " << expr(n->args().at(0));
        break;
      case Opcode::GetAttr:
        line << n->name() << " = self." << n->target();
        break;
      case Opcode::CallModule:
        line << n->name() << " = self." << n->target() << "(" << call_args(*n)
             << ")";
        break;
      case Opcode::CallMethod:
        line << n->name() << " = " << expr(n->args().at(0)) << "."
             << n->target() << "(" << call_args(*n, 1) << ")";
        break;
      case Opcode::CallFunction: {
        const char* infix = infix_for(n->target());
        if (infix && n->args().size() == 2 && n->kwargs().empty()) {
          line << n->name() << " = " << expr(n->args()[0]) << infix
               << expr(n->args()[1]);
        } else {
          line << n->name() << " = torch." << n->target() << "("
               << call_args(*n) << ")";
        }
        break;
      }
    }
    os << "    " << line.str();
    // Clear variables whose last use was this statement (fx's `;  x = None`).
    for (const Node* in : n->input_nodes()) {
      auto it = last.find(in);
      if (it != last.end() && it->second == static_cast<int>(i) &&
          n->op() != Opcode::Output) {
        os << ";  " << in->name() << " = None";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fxcpp::fx
