// split_module — partition a GraphModule into a parent calling sub-
// GraphModules, preserving semantics. The substrate for the paper's
// TensorRT auto-splitting ("automatically splitting the model based on
// TensorRT's supported operators", Section 6.4) and the pipelining case
// study (Section 6.2.3).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::fx {

struct SplitResult {
  std::shared_ptr<GraphModule> parent;
  // Partition id (in first-appearance order) -> submodule.
  std::vector<std::shared_ptr<GraphModule>> submodules;
  std::vector<std::string> submodule_names;  // "submod_<id>"
};

// Assign every compute node a partition id via `part_fn`; nodes with equal
// ids land in the same submodule. The assignment must be topologically
// consistent: a partition may only consume values produced by placeholders
// or partitions that started earlier (throws std::invalid_argument
// otherwise). get_attr nodes travel with their consuming partition's graph.
SplitResult split_module(GraphModule& gm,
                         const std::function<int(const Node&)>& part_fn);

}  // namespace fxcpp::fx
