// Node arguments — the paper's "immediate values" design (Section 4.2).
//
// args/kwargs hold either references to other Nodes (data dependencies) or
// immediate Python-like values (int, float, bool, string, recursive lists)
// inlined directly, so the IR has no separate construction instructions for
// scalars and collections and Nodes stay ~1:1 with tensor operations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace fxcpp::fx {

class Node;

class Argument {
 public:
  using List = std::vector<Argument>;

  Argument() = default;  // None
  /*implicit*/ Argument(Node* n) : v_(n) {}
  /*implicit*/ Argument(bool b) : v_(b) {}
  /*implicit*/ Argument(int i) : v_(static_cast<std::int64_t>(i)) {}
  /*implicit*/ Argument(std::int64_t i) : v_(i) {}
  /*implicit*/ Argument(double d) : v_(d) {}
  /*implicit*/ Argument(const char* s) : v_(std::string(s)) {}
  /*implicit*/ Argument(std::string s) : v_(std::move(s)) {}
  /*implicit*/ Argument(List l) : v_(std::move(l)) {}
  /*implicit*/ Argument(const std::vector<std::int64_t>& ints) {
    List l;
    l.reserve(ints.size());
    for (auto i : ints) l.emplace_back(i);
    v_ = std::move(l);
  }

  bool is_none() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_node() const { return std::holds_alternative<Node*>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_list() const { return std::holds_alternative<List>(v_); }

  Node* node() const { return std::get<Node*>(v_); }
  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const List& list() const { return std::get<List>(v_); }
  List& list() { return std::get<List>(v_); }

  // All-int list convenience (conv strides, pool kernels, shapes, ...).
  std::vector<std::int64_t> int_list() const;

  // Apply `f` to every Node reference inside this argument (recursing into
  // lists) — the traversal Graph uses to maintain use-def chains.
  template <typename F>
  void for_each_node(F&& f) const {
    if (is_node()) {
      f(node());
    } else if (is_list()) {
      for (const auto& a : list()) a.for_each_node(f);
    }
  }

  // Replace every reference to `from` with `to`; returns replacements made.
  int replace_node(Node* from, Node* to);

  bool operator==(const Argument& other) const;

  // Render in the style of Figure 1 (`x`, `3.14`, `(1, 1)`, `'pad'`).
  std::string to_string() const;

 private:
  std::variant<std::monostate, Node*, bool, std::int64_t, double, std::string,
               List>
      v_;
};

using Kwargs = std::vector<std::pair<std::string, Argument>>;

}  // namespace fxcpp::fx
