#include "core/graph_io.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fxcpp::fx {

namespace {

// Strings are single-quoted with C-style escapes so quotes, backslashes and
// line breaks survive the line-oriented format. The parser (parse_string)
// and the balanced scanners in parse_graph() invert exactly this encoding.
void write_string(std::ostringstream& os, const std::string& s) {
  os << '\'';
  for (const char c : s) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '\'': os << "\\'"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '\'';
}

void write_arg(std::ostringstream& os, const Argument& a) {
  if (a.is_none()) {
    os << "None";
  } else if (a.is_node()) {
    os << a.node()->name();
  } else if (a.is_bool()) {
    os << (a.as_bool() ? "True" : "False");
  } else if (a.is_int()) {
    os << a.as_int();
  } else if (a.is_double()) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << a.as_double();
    std::string s = tmp.str();
    // Disambiguate from ints on re-parse.
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
      s += ".0";
    }
    os << s;
  } else if (a.is_string()) {
    write_string(os, a.as_string());
  } else {  // list
    os << '[';
    for (std::size_t i = 0; i < a.list().size(); ++i) {
      if (i) os << ", ";
      write_arg(os, a.list()[i]);
    }
    os << ']';
  }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& s, int line, const std::unordered_map<std::string, Node*>& names)
      : s_(s), line_(line), names_(names) {}

  Argument parse_arg() {
    skip_ws();
    if (eat("None")) return Argument();
    if (eat("True")) return Argument(true);
    if (eat("False")) return Argument(false);
    const char c = peek();
    if (c == '\'') return parse_string();
    if (c == '[') return parse_list();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    return parse_node_ref();
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool eat_char(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("parse_graph: line " + std::to_string(line_) +
                                ": " + why + " (at '" + s_.substr(pos_, 20) +
                                "')");
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool eat(const char* word) {
    skip_ws();
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) == 0) {
      // Must not be a prefix of a longer identifier (e.g. "None_1").
      const char next = pos_ + n < s_.size() ? s_[pos_ + n] : '\0';
      if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
        return false;
      }
      pos_ += n;
      return true;
    }
    return false;
  }

  Argument parse_string() {
    ++pos_;  // opening quote
    std::string v;
    while (pos_ < s_.size() && s_[pos_] != '\'') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape in string");
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case '\\': case '\'': case '"': c = e; break;
          default: fail(std::string("unknown string escape '\\") + e + "'");
        }
      }
      v += c;
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return Argument(std::move(v));
  }

  Argument parse_list() {
    ++pos_;  // '['
    Argument::List items;
    skip_ws();
    if (eat_char(']')) return Argument(std::move(items));
    for (;;) {
      items.push_back(parse_arg());
      if (eat_char(']')) break;
      if (!eat_char(',')) fail("expected ',' or ']' in list");
      skip_ws();
      if (eat_char(']')) break;  // trailing comma
    }
    return Argument(std::move(items));
  }

  Argument parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_float = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') && pos_ > start &&
                  (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E'))) {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (is_float) return Argument(std::stod(tok));
    return Argument(static_cast<std::int64_t>(std::stoll(tok)));
  }

  Argument parse_node_ref() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected argument");
    const std::string name = s_.substr(start, pos_ - start);
    auto it = names_.find(name);
    if (it == names_.end()) fail("unknown node '" + name + "'");
    return Argument(it->second);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int line_;
  const std::unordered_map<std::string, Node*>& names_;
};

Opcode opcode_from(const std::string& s, int line) {
  if (s == "placeholder") return Opcode::Placeholder;
  if (s == "call_function") return Opcode::CallFunction;
  if (s == "call_method") return Opcode::CallMethod;
  if (s == "call_module") return Opcode::CallModule;
  if (s == "get_attr") return Opcode::GetAttr;
  if (s == "output") return Opcode::Output;
  throw std::invalid_argument("parse_graph: line " + std::to_string(line) +
                              ": unknown opcode '" + s + "'");
}

}  // namespace

std::string serialize_graph(const Graph& g) {
  std::ostringstream os;
  for (const Node* n : g.nodes()) {
    os << n->name() << " = " << opcode_name(n->op()) << " target=" << n->target()
       << " args=(";
    for (std::size_t i = 0; i < n->args().size(); ++i) {
      if (i) os << ", ";
      write_arg(os, n->args()[i]);
    }
    os << ")";
    if (!n->kwargs().empty()) {
      os << " kwargs={";
      for (std::size_t i = 0; i < n->kwargs().size(); ++i) {
        if (i) os << ", ";
        os << n->kwargs()[i].first << ": ";
        write_arg(os, n->kwargs()[i].second);
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

std::unique_ptr<Graph> parse_graph(const std::string& text) {
  auto g = std::make_unique<Graph>();
  std::unordered_map<std::string, Node*> names;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto expect = [&](std::size_t pos, const std::string& what) {
      if (pos == std::string::npos) {
        throw std::invalid_argument("parse_graph: line " +
                                    std::to_string(line_no) + ": missing " +
                                    what);
      }
      return pos;
    };
    const std::size_t eq = expect(line.find(" = "), "'='");
    const std::string name = line.substr(0, eq);
    std::size_t p = eq + 3;
    const std::size_t sp = expect(line.find(' ', p), "opcode");
    const Opcode op = opcode_from(line.substr(p, sp - p), line_no);
    const std::size_t tpos = expect(line.find("target=", sp), "target");
    const std::size_t apos = expect(line.find(" args=(", tpos), "args");
    const std::string target = line.substr(tpos + 7, apos - (tpos + 7));
    // Extract the args body (balanced to the matching ')').
    std::size_t body_start = apos + 7;
    int depth = 1;
    bool in_str = false;
    std::size_t i = body_start;
    for (; i < line.size() && depth > 0; ++i) {
      const char c = line[i];
      if (in_str) {
        if (c == '\\') ++i;  // skip the escaped character
        else if (c == '\'') in_str = false;
        continue;
      }
      if (c == '\'') {
        in_str = true;
        continue;
      }
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
    }
    if (depth != 0) {
      throw std::invalid_argument("parse_graph: line " +
                                  std::to_string(line_no) +
                                  ": unbalanced args");
    }
    const std::string args_body = line.substr(body_start, i - 1 - body_start);

    std::vector<Argument> args;
    {
      Parser parser(args_body, line_no, names);
      while (!parser.done()) {
        args.push_back(parser.parse_arg());
        parser.skip_ws();
        if (!parser.eat_char(',')) break;
      }
    }
    Kwargs kwargs;
    const std::size_t kpos = line.find(" kwargs={", i);
    if (kpos != std::string::npos) {
      const std::size_t kend = expect(line.rfind('}'), "kwargs close");
      const std::string kbody = line.substr(kpos + 9, kend - (kpos + 9));
      std::istringstream ks(kbody);
      std::string entry;
      // Keys contain no commas/colons; values are parsed with the full
      // argument parser after splitting on the first ':'.
      std::size_t start = 0;
      int kd = 0;
      bool ks_str = false;
      for (std::size_t j = 0; j <= kbody.size(); ++j) {
        const char c = j < kbody.size() ? kbody[j] : ',';
        if (ks_str) {
          if (c == '\\') ++j;  // skip the escaped character
          else if (c == '\'') ks_str = false;
          continue;
        }
        if (c == '\'') {
          ks_str = true;
          continue;
        }
        if (c == '[' || c == '(') ++kd;
        if (c == ']' || c == ')') --kd;
        if (c == ',' && kd == 0) {
          const std::string item = kbody.substr(start, j - start);
          const std::size_t colon = item.find(':');
          if (colon != std::string::npos) {
            std::string key = item.substr(0, colon);
            while (!key.empty() && key.front() == ' ') key.erase(key.begin());
            // Parser keeps a reference to the string: it must outlive the
            // parse_arg() call, not just the constructor expression.
            const std::string value = item.substr(colon + 1);
            Parser vp(value, line_no, names);
            kwargs.emplace_back(key, vp.parse_arg());
          }
          start = j + 1;
        }
      }
    }

    Node* n;
    if (op == Opcode::Output) {
      n = g->output(args.empty() ? Argument() : args[0]);
    } else {
      n = g->create_node(op, target, std::move(args), std::move(kwargs), name);
    }
    names[n->name()] = n;
  }
  g->lint();
  return g;
}

}  // namespace fxcpp::fx
