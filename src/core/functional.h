// Trace-aware functional operators — the __torch_function__ dispatch layer
// (Section 4.1).
//
// Each function computes eagerly when all inputs are concrete Tensors and
// records a call_function Node when any input is a Proxy. Model code written
// against this namespace therefore runs identically in eager mode and under
// symbolic tracing.
//
// Every target is also registered in OpRegistry::functions() so Interpreters
// and compiled tapes can execute the recorded Nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/value.h"
#include "tensor/shape.h"

namespace fxcpp::fx::fn {

// --- elementwise ---------------------------------------------------------
Value add(const Value& a, const Value& b);
Value add(const Value& a, double s);
Value sub(const Value& a, const Value& b);
Value sub(const Value& a, double s);
Value mul(const Value& a, const Value& b);
Value mul(const Value& a, double s);
Value div(const Value& a, const Value& b);
Value div(const Value& a, double s);
Value neg(const Value& x);
Value relu(const Value& x);
Value gelu(const Value& x);
Value sigmoid(const Value& x);
Value tanh(const Value& x);
Value selu(const Value& x);
Value sqrt(const Value& x);
Value exp(const Value& x);
Value abs(const Value& x);
Value dropout(const Value& x, double p, bool training);

// --- linear algebra --------------------------------------------------------
Value matmul(const Value& a, const Value& b);
Value linear(const Value& x, const Value& w, const Value& b);
// Fused linear+ReLU (the fusion pass's target; bit-equal to
// relu(linear(...)) — the clamp runs in the GEMM epilogue).
Value linear_relu(const Value& x, const Value& w, const Value& b);
Value transpose(const Value& x, std::int64_t d0, std::int64_t d1);
Value embedding(const Value& weight, const Value& indices);

// --- conv / pool -----------------------------------------------------------
Value conv2d(const Value& x, const Value& w, const Value& b,
             std::vector<std::int64_t> stride, std::vector<std::int64_t> padding);
Value max_pool2d(const Value& x, std::vector<std::int64_t> kernel,
                 std::vector<std::int64_t> stride,
                 std::vector<std::int64_t> padding);
Value avg_pool2d(const Value& x, std::vector<std::int64_t> kernel,
                 std::vector<std::int64_t> stride);
Value adaptive_avg_pool2d(const Value& x, std::vector<std::int64_t> out_hw);

// --- normalization -----------------------------------------------------------
Value batch_norm(const Value& x, const Value& gamma, const Value& beta,
                 const Value& mean, const Value& var, double eps);
Value layer_norm(const Value& x, const Value& gamma, const Value& beta,
                 double eps);
Value softmax(const Value& x, std::int64_t dim);

// --- shape -------------------------------------------------------------------
Value reshape(const Value& x, std::vector<std::int64_t> shape);
Value flatten(const Value& x, std::int64_t start_dim);
Value cat(const std::vector<Value>& xs, std::int64_t dim);
Value sum(const Value& x);
Value mean(const Value& x);

// Tuple element access (for multi-output call_module Nodes produced by
// split_module); recorded as call_function getitem.
Value getitem(const Value& tuple, std::int64_t index);

// --- quantization primitives (inserted by quant::convert) --------------------
Value quantize_per_tensor(const Value& x, double scale, std::int64_t zero_point);
Value dequantize(const Value& x);
Value quantized_relu(const Value& x);
Value quantized_add(const Value& a, const Value& b, double out_scale,
                    std::int64_t out_zp);

// Force registration of all builtin targets (called lazily by the
// registries; exposed for explicitness in tests).
void ensure_registered();

}  // namespace fxcpp::fx::fn
