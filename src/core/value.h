// Proxy and Value — the paper's symbolic-tracing data model (Section 4.1).
//
// In Python, Proxy is a duck-typed object intercepting attribute access and
// operator dispatch via __torch_function__. The C++ analog: user-facing model
// code is written against `Value`, a sum type holding either a concrete
// Tensor (eager execution) or a Proxy (a Node being recorded by a Tracer).
// Every functional operator (core/functional.h) and Module call dispatches on
// which alternative is live — the same code path runs eagerly and under
// capture, which is the property symbolic tracing depends on.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp::fx {

class Node;
class Tracer;

// Raised when a traced program performs an operation symbolic tracing cannot
// record — e.g. coercing a Proxy to a concrete bool/int for control flow
// (Section 5.3: "the user receives an error message describing the problem").
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// An abstract value standing in for a runtime value during symbolic tracing.
struct Proxy {
  Node* node = nullptr;
  Tracer* tracer = nullptr;
};

class Value {
 public:
  Value() = default;
  /*implicit*/ Value(Tensor t) : v_(std::move(t)) {}
  /*implicit*/ Value(Proxy p) : v_(p) {}
  /*implicit*/ Value(std::vector<Value> tuple) : v_(std::move(tuple)) {}

  bool defined() const { return !std::holds_alternative<std::monostate>(v_); }
  bool is_tensor() const { return std::holds_alternative<Tensor>(v_); }
  bool is_proxy() const { return std::holds_alternative<Proxy>(v_); }
  bool is_tuple() const { return std::holds_alternative<std::vector<Value>>(v_); }

  // Concrete tensor; throws TraceError if this is a Proxy (the guarded
  // "escape from the traced region" failure mode).
  const Tensor& tensor() const;
  Proxy proxy() const;
  const std::vector<Value>& tuple() const;

  // Concrete scalar extraction — ALWAYS an error under tracing, with a
  // message pointing at the recorded node (Section 5.3).
  double item() const;

  // --- trace-aware tensor methods (recorded as call_method Nodes) --------
  Value neg() const;
  Value relu() const;
  Value reshape(std::vector<std::int64_t> shape) const;
  Value flatten(std::int64_t start_dim = 0) const;
  Value dequantize() const;

  // Operators (recorded as call_function add/sub/mul/div).
  friend Value operator+(const Value& a, const Value& b);
  friend Value operator-(const Value& a, const Value& b);
  friend Value operator*(const Value& a, const Value& b);
  friend Value operator/(const Value& a, const Value& b);
  friend Value operator+(const Value& a, double s);
  friend Value operator-(const Value& a, double s);
  friend Value operator*(const Value& a, double s);
  friend Value operator/(const Value& a, double s);
  Value operator-() const;

 private:
  std::variant<std::monostate, Tensor, Proxy, std::vector<Value>> v_;
};

}  // namespace fxcpp::fx
