// User-defined traceable operators — the fx.wrap analog.
//
// fx.wrap lets users mark a free function so symbolic tracing records it as
// an opaque call_function instead of tracing into it. Here, registering a
// custom op installs a kernel under a target name and returns a trace-aware
// callable: with concrete tensors it computes, with Proxies it records a
// call_function Node executable by the Interpreter and the compiled tape.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/op_registry.h"
#include "core/value.h"

namespace fxcpp::fx {

// Kernel over concrete tensors (one output). Positional scalar/int-list
// arguments are passed through as RtValues after the tensor inputs.
using CustomKernel = std::function<Tensor(const std::vector<Tensor>&)>;

// Register (or replace) a unary/n-ary tensor kernel under `name` in the
// call_function registry. `param_names` documents the positional schema
// (used by kwargs merging and normalize_args).
void register_custom_op(const std::string& name,
                        std::vector<std::string> param_names,
                        CustomKernel kernel);

// Invoke a registered custom op through the trace-aware dispatch layer.
Value call_custom(const std::string& name, const std::vector<Value>& args);

}  // namespace fxcpp::fx
