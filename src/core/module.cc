#include "core/module.h"

#include <sstream>
#include <stdexcept>

#include "core/tracer.h"

namespace fxcpp::nn {

namespace {
// Split "a.b.c" into ("a", "b.c"); returns false if no dot.
bool split_head(const std::string& qual, std::string& head, std::string& rest) {
  const auto pos = qual.find('.');
  if (pos == std::string::npos) return false;
  head = qual.substr(0, pos);
  rest = qual.substr(pos + 1);
  return true;
}
}  // namespace

fx::Value Module::operator()(std::vector<fx::Value> inputs) {
  if (fx::Tracer* t = fx::Tracer::active(); t && t->is_tracing_module(*this)) {
    return t->module_call(*this, inputs);
  }
  return forward(inputs);
}

void Module::train(bool on) {
  training_ = on;
  for (auto& [name, child] : children_) {
    (void)name;
    child->train(on);
  }
}

Tensor& Module::register_parameter(const std::string& name, Tensor t) {
  if (find_local(name)) {
    throw std::logic_error("parameter '" + name + "' already registered");
  }
  params_.emplace_back(name, std::move(t));
  return params_.back().second;
}

Tensor& Module::register_buffer(const std::string& name, Tensor t) {
  if (find_local(name)) {
    throw std::logic_error("buffer '" + name + "' already registered");
  }
  buffers_.emplace_back(name, std::move(t));
  return buffers_.back().second;
}

void Module::add_child(const std::string& name, Ptr m) {
  for (auto& [n, c] : children_) {
    if (n == name) {
      throw std::logic_error("submodule '" + name + "' already registered");
    }
    (void)c;
  }
  children_.emplace_back(name, std::move(m));
}

Module::Ptr Module::get_submodule(const std::string& qualname) const {
  std::string head, rest;
  const std::string& local = qualname;
  if (split_head(qualname, head, rest)) {
    for (const auto& [n, c] : children_) {
      if (n == head) return c->get_submodule(rest);
    }
    throw std::out_of_range("no submodule '" + head + "' in " + kind_);
  }
  for (const auto& [n, c] : children_) {
    if (n == local) return c;
  }
  throw std::out_of_range("no submodule '" + qualname + "' in " + kind_);
}

Tensor* Module::find_local(const std::string& name) {
  for (auto& [n, t] : params_) {
    if (n == name) return &t;
  }
  for (auto& [n, t] : buffers_) {
    if (n == name) return &t;
  }
  return nullptr;
}

const Tensor* Module::find_local(const std::string& name) const {
  return const_cast<Module*>(this)->find_local(name);
}

Tensor Module::get_parameter(const std::string& qualname) const {
  std::string head, rest;
  if (split_head(qualname, head, rest)) {
    for (const auto& [n, c] : children_) {
      if (n == head) return c->get_parameter(rest);
    }
    throw std::out_of_range("no submodule '" + head + "' in " + kind_);
  }
  const Tensor* t = find_local(qualname);
  if (!t) {
    throw std::out_of_range("no parameter '" + qualname + "' in " + kind_);
  }
  return *t;
}

bool Module::has_parameter(const std::string& qualname) const {
  try {
    (void)get_parameter(qualname);
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

void Module::set_submodule(const std::string& qualname, Ptr m) {
  std::string head, rest;
  if (split_head(qualname, head, rest)) {
    get_submodule(head)->set_submodule(rest, std::move(m));
    return;
  }
  for (auto& [n, c] : children_) {
    if (n == qualname) {
      c = std::move(m);
      return;
    }
  }
  add_child(qualname, std::move(m));
}

void Module::set_parameter(const std::string& qualname, Tensor t) {
  std::string head, rest;
  if (split_head(qualname, head, rest)) {
    get_submodule(head)->set_parameter(rest, std::move(t));
    return;
  }
  Tensor* existing = find_local(qualname);
  if (existing) {
    *existing = std::move(t);
  } else {
    register_buffer(qualname, std::move(t));
  }
}

void Module::delete_submodule(const std::string& qualname) {
  std::string head, rest;
  if (split_head(qualname, head, rest)) {
    get_submodule(head)->delete_submodule(rest);
    return;
  }
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->first == qualname) {
      children_.erase(it);
      return;
    }
  }
  throw std::out_of_range("no submodule '" + qualname + "' to delete");
}

Tensor& Module::param(const std::string& name) {
  Tensor* t = find_local(name);
  if (!t) throw std::out_of_range("no parameter '" + name + "' in " + kind_);
  return *t;
}

const Tensor& Module::param(const std::string& name) const {
  return const_cast<Module*>(this)->param(name);
}

fx::Value Module::param_value(const std::string& name) {
  if (fx::Tracer* t = fx::Tracer::active(); t && t->is_tracing_module(*this)) {
    return t->attr_value(*this, name);
  }
  return fx::Value(param(name));
}

std::vector<std::pair<std::string, Tensor>> Module::named_state(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, Tensor>> out;
  auto qual = [&](const std::string& n) {
    return prefix.empty() ? n : prefix + "." + n;
  };
  for (const auto& [n, t] : params_) out.emplace_back(qual(n), t);
  for (const auto& [n, t] : buffers_) out.emplace_back(qual(n), t);
  for (const auto& [n, c] : children_) {
    auto sub = c->named_state(qual(n));
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& [name, t] : params_) {
    (void)name;
    n += t.numel();
  }
  for (const auto& [name, c] : children_) {
    (void)name;
    n += c->num_parameters();
  }
  return n;
}

std::string Module::describe(int indent) const {
  std::ostringstream os;
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << kind_ << "\n";
  for (const auto& [n, c] : children_) {
    os << std::string(static_cast<std::size_t>(indent) * 2 + 2, ' ') << n
       << ": " << c->describe(0);
  }
  return os.str();
}

}  // namespace fxcpp::nn
