// Static memory plan for the compiled tape — core data structures.
//
// A TapePlan assigns each instruction's output a slot in one pre-sized
// arena, computed from per-register live intervals (the tape's ref-counted
// last-use info) by passes/memory_planner. The executors (serial tape and
// ParallelExecutor) consume the plan: before running instruction i they arm
// a thread-local placement hint (Storage::arm_placement) naming the slot, so
// the kernel's output allocation adopts arena memory instead of hitting the
// heap. The split mirrors the repo's layering: plan *computation* (liveness,
// alias analysis, first-fit packing, module classification) needs passes and
// nn; plan *representation and execution* need only core, so they live here.
//
// Safety comes from two properties:
//  - The hint is exact-size and single-shot: a kernel whose actual output
//    size disagrees with the plan (stale meta, shape drift) simply falls
//    back to the heap — a wrong size can slow a planned run down, never
//    corrupt it. Correctness rests only on the liveness/alias analysis.
//  - The plan carries the input contract (GuardSpecs) it was computed
//    under; planned entry points verify it and re-plan on mismatch.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/graph_module.h"
#include "tensor/tensor.h"

namespace fxcpp::fx {

// One planned buffer: the output of tape instruction `def`.
struct PlanInterval {
  int def = -1;          // defining instruction (== index in TapePlan)
  int last_use = -1;     // last instruction reading it (through any alias)
  std::size_t nbytes = 0;  // logical tensor bytes (exact, for the hint)
  std::size_t padded = 0;  // 64-byte padded slot size
  std::size_t offset = 0;  // byte offset in the arena (valid iff planned)
  bool planned = false;    // served from the arena (false = heap)
  bool in_place = false;   // reuses a dead input's slot (can_alias)
  int alias_of = -1;       // interval whose slot this one reuses (in_place)
  // Every instruction that reads this buffer, including reads through
  // view/alias registers. Drives the parallel anti-dependency edges.
  std::vector<int> readers;
};

struct TapePlan {
  std::vector<PlanInterval> intervals;  // parallel to CompiledGraph::instrs()
  std::size_t arena_bytes = 0;      // first-fit high water (arena size)
  std::size_t planned_bytes = 0;    // padded bytes served per run
  std::size_t unplanned_bytes = 0;  // sum of all padded output sizes
  int planned_count = 0;            // instructions served from the arena
  int aliased_count = 0;            // of those, in-place reuses
  // Input contract the plan was computed under (one spec per placeholder,
  // in input order; empty shape+Float32 for non-tensor inputs, which are
  // not checked). A mismatch at run entry triggers transparent re-plan.
  std::vector<GuardSpec> guards;

  // Fraction of per-run output bytes the arena absorbs.
  double planned_fraction() const {
    return unplanned_bytes == 0
               ? 0.0
               : static_cast<double>(planned_bytes) /
                     static_cast<double>(unplanned_bytes);
  }
};

// The 64-byte-aligned block planned runs execute into. Backed by one Storage
// so it shows up exactly once in the allocator counters, however many runs
// reuse it.
class MemoryArena {
 public:
  explicit MemoryArena(std::size_t nbytes)
      : backing_(std::make_shared<Storage>(nbytes)) {}
  std::byte* base() { return backing_->data(); }
  std::size_t nbytes() const { return backing_->nbytes(); }

 private:
  std::shared_ptr<Storage> backing_;
};

// RAII placement hint: arms the slot for one instruction, guarantees
// disarm even when the kernel throws (the hint must never leak into the
// next instruction or an unwinding allocation).
class PlacementGuard {
 public:
  PlacementGuard(std::byte* slot, std::size_t nbytes) {
    Storage::arm_placement(slot, nbytes);
  }
  ~PlacementGuard() { Storage::disarm_placement(); }
  PlacementGuard(const PlacementGuard&) = delete;
  PlacementGuard& operator=(const PlacementGuard&) = delete;
};

// Do `inputs` satisfy the contract the plan was computed under? Non-tensor
// inputs and specs with empty placeholder names pass trivially; any shape
// or dtype difference (or arity mismatch) fails.
bool plan_matches_inputs(const TapePlan& plan,
                         const std::vector<RtValue>& inputs);

}  // namespace fxcpp::fx
