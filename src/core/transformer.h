// Transformer — graph-to-graph rewriting by interpretation, mirroring
// fx.Transformer: walk the source graph, re-emitting each node into a fresh
// graph through overridable per-opcode hooks. Because hooks receive tracing
// Proxies, a subclass can expand one node into many simply by calling the
// trace-aware functional API (fx::fn::*), and the expansion is recorded —
// the idiomatic way to write decomposition/lowering passes.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/graph_module.h"
#include "core/tracer.h"

namespace fxcpp::fx {

class Transformer {
 public:
  explicit Transformer(GraphModule& gm) : gm_(gm) {}
  virtual ~Transformer() = default;

  // Produce the rewritten GraphModule (shares gm's module hierarchy).
  std::shared_ptr<GraphModule> transform();

 protected:
  // Per-opcode hooks. Defaults re-emit the node unchanged. `n` is the source
  // node; use value_of()/remap() to translate its arguments.
  virtual Value placeholder(const Node& n);
  virtual Value get_attr(const Node& n);
  virtual Value call_function(const Node& n);
  virtual Value call_method(const Node& n);
  virtual Value call_module(const Node& n);

  // Source-graph value as a Proxy into the new graph.
  Value value_of(const Node* src) const;
  // Translate a source Argument (Node refs -> new-graph nodes; immediates
  // pass through).
  Argument remap(const Argument& a) const;
  // Default re-emission for any opcode.
  Value emit_same(const Node& n);

  Tracer& tracer() { return tracer_; }
  GraphModule& source() { return gm_; }

 private:
  GraphModule& gm_;
  Tracer tracer_;
  std::unordered_map<const Node*, Value> env_;
};

}  // namespace fxcpp::fx
