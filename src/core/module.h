// nn::Module — the stateful module hierarchy fx preserves (Section 5.6:
// "functional Graphs but stateful Modules").
//
// Parameters and buffers live inside Modules; the traced Graph interacts
// with them only through call_module / get_attr Nodes, giving the natural
// separation between mutable state and functional code that makes transforms
// like Conv-BN folding and quantization able to modify both together.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/value.h"
#include "tensor/tensor.h"

namespace fxcpp::nn {

class Module : public std::enable_shared_from_this<Module> {
 public:
  using Ptr = std::shared_ptr<Module>;

  // `kind` is the class name ("Conv2d", "ResNet", ...); `builtin` marks
  // framework-provided leaf modules that the default Tracer does not trace
  // into (the torch.nn namespace check in fx's is_leaf_module).
  explicit Module(std::string kind, bool builtin = false)
      : kind_(std::move(kind)), builtin_(builtin) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // The computation. Implementations read inputs positionally.
  virtual fx::Value forward(const std::vector<fx::Value>& inputs) = 0;

  // Trace-aware call operator: under an active Tracer this may record a
  // call_module Node (leaf), inline a GraphModule, or trace through.
  fx::Value operator()(std::vector<fx::Value> inputs);
  fx::Value operator()(const fx::Value& x) {
    return (*this)(std::vector<fx::Value>{x});
  }
  fx::Value operator()(const fx::Value& a, const fx::Value& b) {
    return (*this)(std::vector<fx::Value>{a, b});
  }

  const std::string& kind() const { return kind_; }
  bool is_builtin() const { return builtin_; }

  bool training() const { return training_; }
  virtual void train(bool on = true);

  // --- state registration -------------------------------------------------
  Tensor& register_parameter(const std::string& name, Tensor t);
  Tensor& register_buffer(const std::string& name, Tensor t);
  template <typename M>
  std::shared_ptr<M> register_module(const std::string& name,
                                     std::shared_ptr<M> m) {
    add_child(name, m);
    return m;
  }

  // --- lookup by qualified (dotted) path -----------------------------------
  // "layer1.0.conv1" etc. Throw std::out_of_range when absent. Virtual so
  // GraphModule can delegate to the hierarchy its graph was traced from.
  virtual Ptr get_submodule(const std::string& qualname) const;
  virtual Tensor get_parameter(const std::string& qualname) const;
  bool has_parameter(const std::string& qualname) const;
  // Replace (or add) a child at a qualified path — used by transforms that
  // install observers or swap modules for quantized equivalents.
  void set_submodule(const std::string& qualname, Ptr m);
  // Overwrite a parameter/buffer value at a qualified path.
  void set_parameter(const std::string& qualname, Tensor t);
  // Delete a direct or nested child (e.g. removing folded BatchNorms).
  void delete_submodule(const std::string& qualname);

  // --- local (non-recursive) state ---------------------------------------
  const std::vector<std::pair<std::string, Ptr>>& children() const {
    return children_;
  }
  const std::vector<std::pair<std::string, Tensor>>& parameters() const {
    return params_;
  }
  const std::vector<std::pair<std::string, Tensor>>& buffers() const {
    return buffers_;
  }
  // Direct parameter/buffer by local name (throws if absent).
  Tensor& param(const std::string& name);
  const Tensor& param(const std::string& name) const;

  // Trace-aware parameter access for functional-style forwards: returns the
  // concrete Tensor eagerly, or records a get_attr Node under tracing.
  fx::Value param_value(const std::string& name);

  // --- recursive inspection ------------------------------------------------
  // All (qualified-name, tensor) parameter+buffer pairs under this module.
  std::vector<std::pair<std::string, Tensor>> named_state(
      const std::string& prefix = "") const;
  std::int64_t num_parameters() const;

  // One-line-per-module hierarchy description.
  std::string describe(int indent = 0) const;

 private:
  void add_child(const std::string& name, Ptr m);
  Tensor* find_local(const std::string& name);
  const Tensor* find_local(const std::string& name) const;

  std::string kind_;
  bool builtin_ = false;
  bool training_ = false;
  std::vector<std::pair<std::string, Ptr>> children_;
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
};

}  // namespace fxcpp::nn
