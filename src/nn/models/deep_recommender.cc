#include "nn/models/deep_recommender.h"

namespace fxcpp::nn::models {

DeepRecommender::DeepRecommender(DeepRecommenderConfig cfg)
    : Module("DeepRecommender"), cfg_(std::move(cfg)) {
  auto encoder = std::make_shared<Sequential>();
  std::int64_t prev = cfg_.item_dim;
  for (std::int64_t h : cfg_.hidden) {
    encoder->append(std::make_shared<Linear>(prev, h));
    encoder->append(std::make_shared<SELU>());
    prev = h;
  }
  register_module("encoder", encoder);
  register_module("drop", std::make_shared<Dropout>(cfg_.dropout));

  auto decoder = std::make_shared<Sequential>();
  for (auto it = cfg_.hidden.rbegin() + 1; it != cfg_.hidden.rend(); ++it) {
    decoder->append(std::make_shared<Linear>(prev, *it));
    decoder->append(std::make_shared<SELU>());
    prev = *it;
  }
  decoder->append(std::make_shared<Linear>(prev, cfg_.item_dim));
  decoder->append(std::make_shared<SELU>());
  register_module("decoder", decoder);
}

fx::Value DeepRecommender::forward(const std::vector<fx::Value>& inputs) {
  fx::Value x = (*get_submodule("encoder"))(inputs.at(0));
  x = (*get_submodule("drop"))(x);
  return (*get_submodule("decoder"))(x);
}

std::shared_ptr<DeepRecommender> deep_recommender(DeepRecommenderConfig cfg) {
  return std::make_shared<DeepRecommender>(std::move(cfg));
}

}  // namespace fxcpp::nn::models
