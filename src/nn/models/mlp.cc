#include "nn/models/mlp.h"

#include <stdexcept>

namespace fxcpp::nn::models {

namespace {
Module::Ptr make_activation(const std::string& kind) {
  if (kind == "relu") return std::make_shared<ReLU>();
  if (kind == "gelu") return std::make_shared<GELU>();
  if (kind == "selu") return std::make_shared<SELU>();
  if (kind == "tanh") return std::make_shared<Tanh>();
  if (kind == "sigmoid") return std::make_shared<Sigmoid>();
  throw std::invalid_argument("MLP: unknown activation '" + kind + "'");
}
}  // namespace

MLP::MLP(std::vector<std::int64_t> sizes, const std::string& activation)
    : Module("MLP") {
  if (sizes.size() < 2) throw std::invalid_argument("MLP: need >= 2 sizes");
  auto body = std::make_shared<Sequential>();
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    body->append(std::make_shared<Linear>(sizes[i], sizes[i + 1]));
    if (i + 2 < sizes.size()) body->append(make_activation(activation));
  }
  register_module("body", body);
}

fx::Value MLP::forward(const std::vector<fx::Value>& inputs) {
  return (*get_submodule("body"))(inputs.at(0));
}

std::shared_ptr<MLP> mlp(std::vector<std::int64_t> sizes,
                         const std::string& activation) {
  return std::make_shared<MLP>(std::move(sizes), activation);
}

}  // namespace fxcpp::nn::models
