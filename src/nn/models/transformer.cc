#include "nn/models/transformer.h"

#include <cmath>

namespace fxcpp::nn::models {

TransformerEncoderLayer::TransformerEncoderLayer(std::int64_t dim,
                                                 std::int64_t ffn_dim)
    : Module("TransformerEncoderLayer"),
      scale_(1.0 / std::sqrt(static_cast<double>(dim))) {
  register_module("wq", std::make_shared<Linear>(dim, dim));
  register_module("wk", std::make_shared<Linear>(dim, dim));
  register_module("wv", std::make_shared<Linear>(dim, dim));
  register_module("wo", std::make_shared<Linear>(dim, dim));
  register_module("norm1", std::make_shared<LayerNorm>(dim));
  register_module("norm2", std::make_shared<LayerNorm>(dim));
  register_module("ffn1", std::make_shared<Linear>(dim, ffn_dim));
  register_module("ffn2", std::make_shared<Linear>(ffn_dim, dim));
  register_module("act", std::make_shared<GELU>());
}

fx::Value TransformerEncoderLayer::forward(
    const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);  // [seq, dim]
  fx::Value q = (*get_submodule("wq"))(x);
  fx::Value k = (*get_submodule("wk"))(x);
  fx::Value v = (*get_submodule("wv"))(x);
  fx::Value scores = fx::fn::mul(fx::fn::matmul(q, fx::fn::transpose(k, 0, 1)),
                                 scale_);
  fx::Value attn = fx::fn::softmax(scores, -1);
  fx::Value ctx = (*get_submodule("wo"))(fx::fn::matmul(attn, v));
  fx::Value h = (*get_submodule("norm1"))(x + ctx);
  fx::Value f = (*get_submodule("ffn2"))(
      (*get_submodule("act"))((*get_submodule("ffn1"))(h)));
  return (*get_submodule("norm2"))(h + f);
}

std::shared_ptr<TransformerEncoderLayer> transformer_encoder_layer(
    std::int64_t dim, std::int64_t ffn_dim) {
  return std::make_shared<TransformerEncoderLayer>(dim, ffn_dim);
}

}  // namespace fxcpp::nn::models
