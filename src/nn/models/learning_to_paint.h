// LearningToPaint actor (Huang et al., 2019) — the second model of the
// paper's TensorRT lowering experiment (Section 6.4 / Appendix D).
//
// The released agent's actor is a ResNet-18 policy network over a 9-channel
// canvas/target/step-encoding state, emitting 65 sigmoid-squashed stroke
// parameters. Much smaller than ResNet-50, which is exactly why the paper's
// TensorRT speedup is smaller for it (1.54x vs 3.7x) — less graph for the
// AoT compiler to fuse relative to fixed per-op overhead.
#pragma once

#include <memory>

#include "nn/models/resnet.h"

namespace fxcpp::nn::models {

struct LearningToPaintConfig {
  std::int64_t in_channels = 9;
  std::int64_t action_dim = 65;
  std::int64_t width = 64;
};

class LearningToPaintActor : public Module {
 public:
  explicit LearningToPaintActor(LearningToPaintConfig cfg);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

 private:
  LearningToPaintConfig cfg_;
};

std::shared_ptr<LearningToPaintActor> learning_to_paint_actor(
    LearningToPaintConfig cfg = {});

}  // namespace fxcpp::nn::models
