// ResNet (He et al., 2015) in the torchvision layout — the model used by
// three of the paper's four experiments (IR complexity, Conv-BN fusion, and
// TensorRT lowering).
//
// `width` scales all channel counts (width=64 is the canonical network) so
// benches fit the reproduction machine; the topology — and therefore the
// node counts and fusion opportunities — is unchanged by scaling.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace fxcpp::nn::models {

// conv3x3/conv1x1 + BN + ReLU residual block (ResNet-18/34).
class BasicBlock : public Module {
 public:
  static constexpr std::int64_t kExpansion = 1;
  BasicBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
             Module::Ptr downsample);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  bool has_downsample() const { return has_downsample_; }

 private:
  bool has_downsample_;
};

// 1x1 -> 3x3 -> 1x1(4x) bottleneck residual block (ResNet-50/101/152).
class Bottleneck : public Module {
 public:
  static constexpr std::int64_t kExpansion = 4;
  Bottleneck(std::int64_t in_ch, std::int64_t mid_ch, std::int64_t stride,
             Module::Ptr downsample);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  bool has_downsample() const { return has_downsample_; }

 private:
  bool has_downsample_;
};

struct ResNetConfig {
  // Blocks per stage; {3,4,6,3} with bottleneck=true is ResNet-50.
  std::vector<std::int64_t> layers{3, 4, 6, 3};
  bool bottleneck = true;
  std::int64_t width = 64;  // channels of the stem (canonical: 64)
  std::int64_t num_classes = 1000;
  std::int64_t in_channels = 3;
};

class ResNet : public Module {
 public:
  explicit ResNet(ResNetConfig cfg);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  const ResNetConfig& config() const { return cfg_; }

 private:
  Module::Ptr make_stage(std::int64_t blocks, std::int64_t planes,
                         std::int64_t stride);
  ResNetConfig cfg_;
  std::int64_t in_planes_;
};

// Canonical topologies with adjustable width / classes.
std::shared_ptr<ResNet> resnet18(std::int64_t width = 64,
                                 std::int64_t num_classes = 1000,
                                 std::int64_t in_channels = 3);
std::shared_ptr<ResNet> resnet50(std::int64_t width = 64,
                                 std::int64_t num_classes = 1000,
                                 std::int64_t in_channels = 3);

}  // namespace fxcpp::nn::models
