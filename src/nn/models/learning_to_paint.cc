#include "nn/models/learning_to_paint.h"

namespace fxcpp::nn::models {

LearningToPaintActor::LearningToPaintActor(LearningToPaintConfig cfg)
    : Module("LearningToPaintActor"), cfg_(cfg) {
  register_module("backbone", resnet18(cfg.width, cfg.action_dim,
                                       cfg.in_channels));
  register_module("out_act", std::make_shared<Sigmoid>());
}

fx::Value LearningToPaintActor::forward(const std::vector<fx::Value>& inputs) {
  fx::Value x = (*get_submodule("backbone"))(inputs.at(0));
  return (*get_submodule("out_act"))(x);
}

std::shared_ptr<LearningToPaintActor> learning_to_paint_actor(
    LearningToPaintConfig cfg) {
  return std::make_shared<LearningToPaintActor>(cfg);
}

}  // namespace fxcpp::nn::models
