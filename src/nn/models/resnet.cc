#include "nn/models/resnet.h"

namespace fxcpp::nn::models {

namespace {
Module::Ptr make_downsample(std::int64_t in_ch, std::int64_t out_ch,
                            std::int64_t stride) {
  auto seq = std::make_shared<Sequential>();
  seq->append(std::make_shared<Conv2d>(in_ch, out_ch, /*kernel=*/1, stride,
                                       /*padding=*/0, /*bias=*/false));
  seq->append(std::make_shared<BatchNorm2d>(out_ch));
  return seq;
}
}  // namespace

// --- BasicBlock -------------------------------------------------------------

BasicBlock::BasicBlock(std::int64_t in_ch, std::int64_t out_ch,
                       std::int64_t stride, Module::Ptr downsample)
    : Module("BasicBlock"), has_downsample_(downsample != nullptr) {
  register_module("conv1", std::make_shared<Conv2d>(in_ch, out_ch, 3, stride,
                                                    1, /*bias=*/false));
  register_module("bn1", std::make_shared<BatchNorm2d>(out_ch));
  register_module("relu", std::make_shared<ReLU>());
  register_module("conv2",
                  std::make_shared<Conv2d>(out_ch, out_ch, 3, 1, 1, false));
  register_module("bn2", std::make_shared<BatchNorm2d>(out_ch));
  if (downsample) register_module("downsample", std::move(downsample));
}

fx::Value BasicBlock::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  fx::Value identity = x;
  fx::Value out = (*get_submodule("conv1"))(x);
  out = (*get_submodule("bn1"))(out);
  out = (*get_submodule("relu"))(out);
  out = (*get_submodule("conv2"))(out);
  out = (*get_submodule("bn2"))(out);
  if (has_downsample_) identity = (*get_submodule("downsample"))(x);
  out = out + identity;
  return (*get_submodule("relu"))(out);
}

// --- Bottleneck -------------------------------------------------------------

Bottleneck::Bottleneck(std::int64_t in_ch, std::int64_t mid_ch,
                       std::int64_t stride, Module::Ptr downsample)
    : Module("Bottleneck"), has_downsample_(downsample != nullptr) {
  const std::int64_t out_ch = mid_ch * kExpansion;
  register_module("conv1",
                  std::make_shared<Conv2d>(in_ch, mid_ch, 1, 1, 0, false));
  register_module("bn1", std::make_shared<BatchNorm2d>(mid_ch));
  register_module("conv2", std::make_shared<Conv2d>(mid_ch, mid_ch, 3, stride,
                                                    1, false));
  register_module("bn2", std::make_shared<BatchNorm2d>(mid_ch));
  register_module("conv3",
                  std::make_shared<Conv2d>(mid_ch, out_ch, 1, 1, 0, false));
  register_module("bn3", std::make_shared<BatchNorm2d>(out_ch));
  register_module("relu", std::make_shared<ReLU>());
  if (downsample) register_module("downsample", std::move(downsample));
}

fx::Value Bottleneck::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  fx::Value identity = x;
  fx::Value out = (*get_submodule("conv1"))(x);
  out = (*get_submodule("bn1"))(out);
  out = (*get_submodule("relu"))(out);
  out = (*get_submodule("conv2"))(out);
  out = (*get_submodule("bn2"))(out);
  out = (*get_submodule("relu"))(out);
  out = (*get_submodule("conv3"))(out);
  out = (*get_submodule("bn3"))(out);
  if (has_downsample_) identity = (*get_submodule("downsample"))(x);
  out = out + identity;
  return (*get_submodule("relu"))(out);
}

// --- ResNet --------------------------------------------------------------------

ResNet::ResNet(ResNetConfig cfg) : Module("ResNet"), cfg_(cfg) {
  const std::int64_t w = cfg_.width;
  in_planes_ = w;
  register_module("conv1", std::make_shared<Conv2d>(cfg_.in_channels, w, 7, 2,
                                                    3, /*bias=*/false));
  register_module("bn1", std::make_shared<BatchNorm2d>(w));
  register_module("relu", std::make_shared<ReLU>());
  register_module("maxpool", std::make_shared<MaxPool2d>(3, 2, 1));
  register_module("layer1", make_stage(cfg_.layers.at(0), w, 1));
  register_module("layer2", make_stage(cfg_.layers.at(1), w * 2, 2));
  register_module("layer3", make_stage(cfg_.layers.at(2), w * 4, 2));
  register_module("layer4", make_stage(cfg_.layers.at(3), w * 8, 2));
  register_module("avgpool", std::make_shared<AdaptiveAvgPool2d>(1));
  register_module("flatten", std::make_shared<Flatten>(1));
  register_module("fc", std::make_shared<Linear>(in_planes_, cfg_.num_classes));
}

Module::Ptr ResNet::make_stage(std::int64_t blocks, std::int64_t planes,
                               std::int64_t stride) {
  const std::int64_t expansion =
      cfg_.bottleneck ? Bottleneck::kExpansion : BasicBlock::kExpansion;
  auto stage = std::make_shared<Sequential>();
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t s = b == 0 ? stride : 1;
    Module::Ptr down;
    if (b == 0 && (s != 1 || in_planes_ != planes * expansion)) {
      down = make_downsample(in_planes_, planes * expansion, s);
    }
    if (cfg_.bottleneck) {
      stage->append(std::make_shared<Bottleneck>(in_planes_, planes, s,
                                                 std::move(down)));
    } else {
      stage->append(std::make_shared<BasicBlock>(in_planes_, planes, s,
                                                 std::move(down)));
    }
    in_planes_ = planes * expansion;
  }
  return stage;
}

fx::Value ResNet::forward(const std::vector<fx::Value>& inputs) {
  fx::Value x = inputs.at(0);
  x = (*get_submodule("conv1"))(x);
  x = (*get_submodule("bn1"))(x);
  x = (*get_submodule("relu"))(x);
  x = (*get_submodule("maxpool"))(x);
  x = (*get_submodule("layer1"))(x);
  x = (*get_submodule("layer2"))(x);
  x = (*get_submodule("layer3"))(x);
  x = (*get_submodule("layer4"))(x);
  x = (*get_submodule("avgpool"))(x);
  x = (*get_submodule("flatten"))(x);
  return (*get_submodule("fc"))(x);
}

std::shared_ptr<ResNet> resnet18(std::int64_t width, std::int64_t num_classes,
                                 std::int64_t in_channels) {
  ResNetConfig cfg;
  cfg.layers = {2, 2, 2, 2};
  cfg.bottleneck = false;
  cfg.width = width;
  cfg.num_classes = num_classes;
  cfg.in_channels = in_channels;
  return std::make_shared<ResNet>(cfg);
}

std::shared_ptr<ResNet> resnet50(std::int64_t width, std::int64_t num_classes,
                                 std::int64_t in_channels) {
  ResNetConfig cfg;
  cfg.layers = {3, 4, 6, 3};
  cfg.bottleneck = true;
  cfg.width = width;
  cfg.num_classes = num_classes;
  cfg.in_channels = in_channels;
  return std::make_shared<ResNet>(cfg);
}

}  // namespace fxcpp::nn::models
