// Simple MLP — the "typical model" workhorse for tests and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace fxcpp::nn::models {

// Fully-connected stack: sizes {in, h1, ..., out} with the given activation
// ("relu", "gelu", "selu", "tanh", "sigmoid") between layers.
class MLP : public Module {
 public:
  MLP(std::vector<std::int64_t> sizes, const std::string& activation = "relu");
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

std::shared_ptr<MLP> mlp(std::vector<std::int64_t> sizes,
                         const std::string& activation = "relu");

}  // namespace fxcpp::nn::models
