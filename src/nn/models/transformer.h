// Transformer encoder layer (Vaswani et al., 2017) — supports the paper's
// Section 5.5 observation that attention blocks are expressible as basic
// block programs (no control flow), so they trace cleanly into the fx IR.
//
// Single-head formulation over a [seq_len, dim] input: every step is a plain
// tensor op, demonstrating that even "complex" modern architectures capture
// as a flat DAG.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace fxcpp::nn::models {

class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::int64_t dim, std::int64_t ffn_dim);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

 private:
  double scale_;
};

std::shared_ptr<TransformerEncoderLayer> transformer_encoder_layer(
    std::int64_t dim, std::int64_t ffn_dim);

}  // namespace fxcpp::nn::models
