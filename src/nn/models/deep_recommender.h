// DeepRecommender (Kuchaiev & Ginsburg, 2017) — the deep autoencoder for
// collaborative filtering quantized in the paper's Section 6.2.1 experiment.
//
// An encoder/decoder stack of Linear + SELU layers over a (large) item
// vector, with dropout at the bottleneck. The original evaluates on the
// Netflix ratings vector (~17k items); `item_dim` is configurable so the
// benchmark fits this machine while preserving the layer structure the
// quantization transform instruments.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace fxcpp::nn::models {

struct DeepRecommenderConfig {
  std::int64_t item_dim = 4096;
  // Hidden sizes of the encoder; the decoder mirrors them.
  std::vector<std::int64_t> hidden{512, 512, 1024};
  double dropout = 0.8;  // at the code layer (inference no-op)
};

class DeepRecommender : public Module {
 public:
  explicit DeepRecommender(DeepRecommenderConfig cfg);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  const DeepRecommenderConfig& config() const { return cfg_; }

 private:
  DeepRecommenderConfig cfg_;
};

std::shared_ptr<DeepRecommender> deep_recommender(
    DeepRecommenderConfig cfg = {});

}  // namespace fxcpp::nn::models
