// DLRM-style personalization model (Naumov et al., 2019) — the paper's
// Section 2.3 example of a recommendation architecture that is "easily
// expressed" as a basic-block program: embedding lookups + MLPs + a feature
// interaction implemented with concatenation, no control flow anywhere.
//
// Inputs: one dense feature tensor [B, dense_dim] followed by one Int64
// index tensor [B] per embedding table.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace fxcpp::nn::models {

struct DlrmConfig {
  std::int64_t dense_dim = 16;
  std::int64_t embedding_dim = 16;
  std::vector<std::int64_t> table_sizes{100, 100, 100};
  std::vector<std::int64_t> bottom_mlp{32, 16};
  std::vector<std::int64_t> top_mlp{64, 1};
};

class DLRM : public Module {
 public:
  explicit DLRM(DlrmConfig cfg);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  const DlrmConfig& config() const { return cfg_; }
  // 1 dense input + one index tensor per table.
  std::size_t num_inputs() const { return 1 + cfg_.table_sizes.size(); }

 private:
  DlrmConfig cfg_;
};

std::shared_ptr<DLRM> dlrm(DlrmConfig cfg = {});

}  // namespace fxcpp::nn::models
