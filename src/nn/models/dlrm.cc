#include "nn/models/dlrm.h"

namespace fxcpp::nn::models {

namespace {
Module::Ptr make_mlp(std::int64_t in, const std::vector<std::int64_t>& sizes,
                     bool final_sigmoid) {
  auto seq = std::make_shared<Sequential>();
  std::int64_t prev = in;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    seq->append(std::make_shared<Linear>(prev, sizes[i]));
    const bool last = i + 1 == sizes.size();
    if (!last) seq->append(std::make_shared<ReLU>());
    else if (final_sigmoid) seq->append(std::make_shared<Sigmoid>());
    prev = sizes[i];
  }
  return seq;
}
}  // namespace

DLRM::DLRM(DlrmConfig cfg) : Module("DLRM"), cfg_(std::move(cfg)) {
  register_module("bottom",
                  make_mlp(cfg_.dense_dim, cfg_.bottom_mlp, false));
  for (std::size_t i = 0; i < cfg_.table_sizes.size(); ++i) {
    register_module("emb_" + std::to_string(i),
                    std::make_shared<Embedding>(cfg_.table_sizes[i],
                                                cfg_.embedding_dim));
  }
  const std::int64_t interaction_dim =
      cfg_.bottom_mlp.back() +
      static_cast<std::int64_t>(cfg_.table_sizes.size()) * cfg_.embedding_dim;
  register_module("top", make_mlp(interaction_dim, cfg_.top_mlp, true));
}

fx::Value DLRM::forward(const std::vector<fx::Value>& inputs) {
  fx::Value dense = (*get_submodule("bottom"))(inputs.at(0));
  std::vector<fx::Value> features{dense};
  for (std::size_t i = 0; i < cfg_.table_sizes.size(); ++i) {
    features.push_back(
        (*get_submodule("emb_" + std::to_string(i)))(inputs.at(i + 1)));
  }
  // Feature interaction by concatenation — still a flat DAG.
  fx::Value interact = fx::fn::cat(features, 1);
  return (*get_submodule("top"))(interact);
}

std::shared_ptr<DLRM> dlrm(DlrmConfig cfg) {
  return std::make_shared<DLRM>(std::move(cfg));
}

}  // namespace fxcpp::nn::models
