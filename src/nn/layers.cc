#include "nn/layers.h"

#include "tensor/ops.h"

#include <cmath>

#include "runtime/rng.h"

namespace fxcpp::nn {

namespace {
// Kaiming-uniform-style init matching nn.Linear/nn.Conv2d defaults.
Tensor init_weight(Shape shape, std::int64_t fan_in) {
  Tensor t(shape, DType::Float32);
  const double bound = 1.0 / std::sqrt(static_cast<double>(fan_in));
  auto& rng = rt::Rng::global();
  float* p = t.data<float>();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return t;
}
}  // namespace

// --- Linear -----------------------------------------------------------------

Linear::Linear(std::string kind, std::int64_t in_features,
               std::int64_t out_features, bool bias)
    : Module(std::move(kind), /*builtin=*/true),
      in_(in_features),
      out_(out_features),
      has_bias_(bias) {
  register_parameter("weight", init_weight({out_, in_}, in_));
  if (bias) register_parameter("bias", init_weight({out_}, in_));
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias)
    : Linear("Linear", in_features, out_features, bias) {}

fx::Value Linear::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::linear(inputs.at(0), param_value("weight"),
                        has_bias_ ? param_value("bias") : fx::Value());
}

LinearReLU::LinearReLU(std::int64_t in_features, std::int64_t out_features,
                       bool bias)
    : Linear("LinearReLU", in_features, out_features, bias) {}

fx::Value LinearReLU::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::linear_relu(inputs.at(0), param_value("weight"),
                             has_bias() ? param_value("bias") : fx::Value());
}

// --- Conv2d ------------------------------------------------------------------

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias)
    : Module("Conv2d", /*builtin=*/true),
      in_(in_channels),
      out_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  register_parameter("weight",
                     init_weight({out_, in_, kernel_, kernel_}, fan_in));
  if (bias) register_parameter("bias", init_weight({out_}, fan_in));
}

fx::Value Conv2d::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::conv2d(inputs.at(0), param_value("weight"),
                        has_bias_ ? param_value("bias") : fx::Value(),
                        {stride_, stride_}, {padding_, padding_});
}

// --- BatchNorm2d -----------------------------------------------------------

BatchNorm2d::BatchNorm2d(std::int64_t features, double eps)
    : Module("BatchNorm2d", /*builtin=*/true), features_(features), eps_(eps) {
  register_parameter("weight", Tensor::ones({features_}));
  register_parameter("bias", Tensor::zeros({features_}));
  register_buffer("running_mean", Tensor::zeros({features_}));
  register_buffer("running_var", Tensor::ones({features_}));
}

fx::Value BatchNorm2d::forward(const std::vector<fx::Value>& inputs) {
  // Training mode (concrete tensors only): batch statistics + running-stat
  // update. Symbolic tracing always records the inference form — mutation
  // stays inside the Module, per the paper's Section 5.6 design.
  if (training() && inputs.at(0).is_tensor()) {
    return fx::Value(ops::batch_norm_train(
        inputs.at(0).tensor(), param("weight"), param("bias"),
        param("running_mean"), param("running_var"), /*momentum=*/0.1, eps_));
  }
  return fx::fn::batch_norm(inputs.at(0), param_value("weight"),
                            param_value("bias"), param_value("running_mean"),
                            param_value("running_var"), eps_);
}

// --- LayerNorm ----------------------------------------------------------------

LayerNorm::LayerNorm(std::int64_t dim, double eps)
    : Module("LayerNorm", /*builtin=*/true), eps_(eps) {
  register_parameter("weight", Tensor::ones({dim}));
  register_parameter("bias", Tensor::zeros({dim}));
}

fx::Value LayerNorm::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::layer_norm(inputs.at(0), param_value("weight"),
                            param_value("bias"), eps_);
}

// --- activations -------------------------------------------------------------

#define FXCPP_DEFINE_ACTIVATION(NAME, FN)                              \
  NAME::NAME() : Module(#NAME, /*builtin=*/true) {}                   \
  fx::Value NAME::forward(const std::vector<fx::Value>& inputs) {     \
    return fx::fn::FN(inputs.at(0));                                  \
  }
FXCPP_DEFINE_ACTIVATION(ReLU, relu)
FXCPP_DEFINE_ACTIVATION(GELU, gelu)
FXCPP_DEFINE_ACTIVATION(SELU, selu)
FXCPP_DEFINE_ACTIVATION(Sigmoid, sigmoid)
FXCPP_DEFINE_ACTIVATION(Tanh, tanh)
#undef FXCPP_DEFINE_ACTIVATION

// --- pooling / shape ----------------------------------------------------------

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding)
    : Module("MaxPool2d", /*builtin=*/true),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {}

fx::Value MaxPool2d::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::max_pool2d(inputs.at(0), {kernel_, kernel_},
                            {stride_, stride_}, {padding_, padding_});
}

AdaptiveAvgPool2d::AdaptiveAvgPool2d(std::int64_t output_size)
    : Module("AdaptiveAvgPool2d", /*builtin=*/true), out_(output_size) {}

fx::Value AdaptiveAvgPool2d::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::adaptive_avg_pool2d(inputs.at(0), {out_, out_});
}

Flatten::Flatten(std::int64_t start_dim)
    : Module("Flatten", /*builtin=*/true), start_dim_(start_dim) {}

fx::Value Flatten::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::flatten(inputs.at(0), start_dim_);
}

Dropout::Dropout(double p) : Module("Dropout", /*builtin=*/true), p_(p) {}

fx::Value Dropout::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::dropout(inputs.at(0), p_, training());
}

Identity::Identity() : Module("Identity", /*builtin=*/true) {}

fx::Value Identity::forward(const std::vector<fx::Value>& inputs) {
  return inputs.at(0);
}

Embedding::Embedding(std::int64_t num_embeddings, std::int64_t dim)
    : Module("Embedding", /*builtin=*/true) {
  register_parameter("weight", Tensor::randn({num_embeddings, dim}));
}

fx::Value Embedding::forward(const std::vector<fx::Value>& inputs) {
  return fx::fn::embedding(param_value("weight"), inputs.at(0));
}

// --- Sequential ---------------------------------------------------------------

Sequential::Sequential() : Module("Sequential", /*builtin=*/false) {}

Sequential::Sequential(std::vector<Ptr> mods) : Sequential() {
  for (auto& m : mods) append(std::move(m));
}

void Sequential::append(Ptr m) {
  register_module(std::to_string(children().size()), std::move(m));
}

fx::Value Sequential::forward(const std::vector<fx::Value>& inputs) {
  fx::Value x = inputs.at(0);
  // Control flow not dependent on inputs: this loop vanishes under tracing.
  for (const auto& [name, child] : children()) {
    (void)name;
    x = (*child)(x);
  }
  return x;
}

}  // namespace fxcpp::nn
