// Built-in neural network layers — the torch.nn surface the paper's models
// are written against.
//
// All layers are `builtin` Modules: the default Tracer records them as
// opaque call_module Nodes ("torch.fx keeps PyTorch built-in Modules such as
// nn.Conv2d intact while tracing", Section 5.2), except Sequential, which is
// a container traced through (its Python loop disappears from the trace,
// Section 5.1).
//
// Forwards read parameters through param_value(), so a Tracer configured to
// trace *into* a builtin layer records get_attr + call_function Nodes
// instead — the configurability case of Section 5.2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/functional.h"
#include "core/module.h"

namespace fxcpp::nn {

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias = true);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  bool has_bias() const { return has_bias_; }

 protected:
  // Subclass hook (LinearReLU): same parameters, different reported kind.
  Linear(std::string kind, std::int64_t in_features, std::int64_t out_features,
         bool bias);

 private:
  std::int64_t in_, out_;
  bool has_bias_;
};

// Fused Linear+ReLU: a Linear whose forward lowers to the fused linear_relu
// kernel (the clamp runs in the GEMM epilogue; bit-equal to
// ReLU(Linear(x))). Installed by passes::fuse_linear_relu — is-a Linear, so
// feature introspection and analyses that accept Linear keep working, but
// passes that re-emit a plain linear from it must remember the ReLU (see
// trt::build_engine).
class LinearReLU : public Linear {
 public:
  LinearReLU(std::int64_t in_features, std::int64_t out_features,
             bool bias = true);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t padding = 0,
         bool bias = true);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

  std::int64_t in_channels() const { return in_; }
  std::int64_t out_channels() const { return out_; }
  std::vector<std::int64_t> stride() const { return {stride_, stride_}; }
  std::vector<std::int64_t> padding() const { return {padding_, padding_}; }
  bool has_bias() const { return has_bias_; }

 private:
  std::int64_t in_, out_, kernel_, stride_, padding_;
  bool has_bias_;
};

// Inference-mode batch normalization over channel dim 1 (running stats).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t features, double eps = 1e-5);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

  std::int64_t num_features() const { return features_; }
  double eps() const { return eps_; }

 private:
  std::int64_t features_;
  double eps_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, double eps = 1e-5);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

 private:
  double eps_;
};

// Elementwise activations.
#define FXCPP_DECLARE_ACTIVATION(NAME)                          \
  class NAME : public Module {                                  \
   public:                                                      \
    NAME();                                                     \
    fx::Value forward(const std::vector<fx::Value>& inputs) override; \
  };
FXCPP_DECLARE_ACTIVATION(ReLU)
FXCPP_DECLARE_ACTIVATION(GELU)
FXCPP_DECLARE_ACTIVATION(SELU)
FXCPP_DECLARE_ACTIVATION(Sigmoid)
FXCPP_DECLARE_ACTIVATION(Tanh)
#undef FXCPP_DECLARE_ACTIVATION

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t padding = 0);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

 private:
  std::int64_t kernel_, stride_, padding_;
};

class AdaptiveAvgPool2d : public Module {
 public:
  explicit AdaptiveAvgPool2d(std::int64_t output_size);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  std::int64_t output_size() const { return out_; }

 private:
  std::int64_t out_;
};

class Flatten : public Module {
 public:
  explicit Flatten(std::int64_t start_dim = 1);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

 private:
  std::int64_t start_dim_;
};

class Dropout : public Module {
 public:
  explicit Dropout(double p);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  double p() const { return p_; }

 private:
  double p_;
};

class Identity : public Module {
 public:
  Identity();
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

class Embedding : public Module {
 public:
  Embedding(std::int64_t num_embeddings, std::int64_t dim);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

// Container executing children in registration order. NOT a tracing leaf:
// the iteration loop is control flow not dependent on inputs, so tracing
// flattens it away (the paper's torch.nn.Sequential example).
class Sequential : public Module {
 public:
  Sequential();
  explicit Sequential(std::vector<Ptr> mods);
  // Append with auto-assigned name "0", "1", ...
  void append(Ptr m);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

}  // namespace fxcpp::nn
